"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Describe the built-in synthetic cohorts.
``tradeoff``
    Sweep privacy budgets and print the speedup curve.
``classify``
    Run live hybrid (disclose-then-SMC) classifications, either through
    the in-process transport or over a real localhost TCP socket
    (``--transport tcp``).
``serve``
    Serve a saved deployment bundle over a TCP socket.
``attack``
    Run the Fredrikson-style model-inversion escalation.
``calibrate``
    Micro-benchmark this machine's crypto and print the profile.
``lint``
    Run the crypto/protocol invariant linter (see
    ``docs/STATIC_ANALYSIS.md``).

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import PipelineConfig, PrivacyAwareClassifier, TradeoffAnalyzer
from repro.bench import Table
from repro.crypto.engine import BACKENDS as ENGINE_BACKENDS
from repro.smc.transport import TRANSPORT_BACKENDS
from repro.data import (
    generate_adult_like,
    generate_cancer_like,
    generate_warfarin,
    train_test_split,
)

DATASETS = {
    "warfarin": generate_warfarin,
    "adult": generate_adult_like,
    "cancer": generate_cancer_like,
}
CLASSIFIERS = ("linear", "naive_bayes", "tree")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Privacy-aware feature selection for secure classification "
            "(reproduction of Pattuk et al., ICDE 2016)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="describe the built-in cohorts")

    tradeoff = commands.add_parser(
        "tradeoff", help="sweep privacy budgets, print the speedup curve"
    )
    _add_common(tradeoff)
    tradeoff.add_argument(
        "--budgets", default="0,0.01,0.05,0.1,0.5,1.0",
        help="comma-separated privacy budgets",
    )

    classify = commands.add_parser(
        "classify", help="live hybrid classification demo"
    )
    _add_common(classify)
    classify.add_argument("--budget", type=float, default=0.05,
                          help="privacy budget (default 0.05)")
    classify.add_argument("--rows", type=int, default=3,
                          help="number of test rows to classify live")
    classify.add_argument(
        "--transport", choices=TRANSPORT_BACKENDS, default="inproc",
        help="wire backend: 'inproc' round-trips every message through "
             "the canonical codec in-process; 'tcp' ships every message "
             "over a localhost socket to a peer process (default inproc)",
    )

    serve = commands.add_parser(
        "serve", help="serve a saved deployment bundle over TCP"
    )
    serve.add_argument("--bundle", required=True,
                       help="path to a deployment bundle JSON")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: ephemeral, printed)")
    serve.add_argument("--max-connections", type=int, default=None,
                       help="stop after this many connections "
                            "(default: serve forever)")

    attack = commands.add_parser(
        "attack", help="model-inversion escalation (Fredrikson-style)"
    )
    attack.add_argument("--victims", type=int, default=400,
                        help="number of attacked records")

    commands.add_parser(
        "calibrate", help="micro-benchmark this machine's crypto"
    )

    lint = commands.add_parser(
        "lint", help="run the crypto/protocol invariant linter"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--dataset", choices=sorted(DATASETS), default="warfarin")
    sub.add_argument("--classifier", choices=CLASSIFIERS,
                     default="naive_bayes")
    sub.add_argument("--engine", choices=ENGINE_BACKENDS, default="serial",
                     help="batch crypto engine backend (default serial; "
                          "parallel fans work across processes)")
    sub.add_argument("--workers", type=int, default=None,
                     help="worker processes for --engine parallel "
                          "(default: CPU count)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "datasets": _cmd_datasets,
        "tradeoff": _cmd_tradeoff,
        "classify": _cmd_classify,
        "serve": _cmd_serve,
        "attack": _cmd_attack,
        "calibrate": _cmd_calibrate,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


# -- command implementations ------------------------------------------------


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name, generator in sorted(DATASETS.items()):
        dataset = generator(seed=args.seed)
        print(dataset.describe())
        print()
    return 0


def _fitted_pipeline(args: argparse.Namespace) -> tuple:
    dataset = DATASETS[args.dataset](seed=args.seed)
    train, test = train_test_split(dataset, seed=args.seed)
    pipeline = PrivacyAwareClassifier(
        PipelineConfig(
            classifier=args.classifier, paillier_bits=384, dgk_bits=192,
            engine_backend=getattr(args, "engine", "serial"),
            engine_workers=getattr(args, "workers", None),
            seed=args.seed,
        )
    ).fit(train)
    return pipeline, train, test


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    pipeline, _, _ = _fitted_pipeline(args)
    budgets = [float(b) for b in args.budgets.split(",") if b.strip()]
    points = TradeoffAnalyzer(pipeline).sweep(budgets)
    print(f"dataset={args.dataset} classifier={args.classifier}")
    print(TradeoffAnalyzer.format_table(points))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.smc import wire
    from repro.smc.transport import (
        InProcessTransport, TcpTransport, start_wire_peer,
    )

    pipeline, train, test = _fitted_pipeline(args)
    solution = pipeline.select_disclosure(args.budget)
    names = [train.features[i].name for i in solution.disclosed]
    print(f"disclosure (risk {solution.risk:.4f} <= {args.budget}): "
          f"{', '.join(names) or '(nothing)'}")
    print(f"modeled speedup over pure SMC: {pipeline.speedup():.1f}x")
    ctx = pipeline.make_context(seed=args.seed + 1)
    codec = wire.codec_for_context(ctx)
    peer = None
    if args.transport == "tcp":
        peer, port = start_wire_peer()
        transport = TcpTransport(port=port, codec=codec)
        print(f"transport: tcp (peer process on 127.0.0.1:{port})")
    else:
        transport = InProcessTransport(codec)
        print("transport: inproc (canonical codec round-trip)")
    ctx.channel.transport = transport
    mismatches = 0
    try:
        for row_id, row in enumerate(test.X[: args.rows]):
            label = pipeline.classify(row, ctx=ctx)
            expected = pipeline.secure_model.predict_quantized(row)
            mismatches += label != expected
            print(f"row {row_id}: secure={label} plaintext={expected} "
                  f"{'OK' if label == expected else 'MISMATCH'}")
        print(f"traffic: {ctx.trace.total_bytes} bytes over "
              f"{ctx.trace.rounds} rounds")
        measured = transport.stats.total_bytes
        if measured != ctx.trace.total_bytes:
            print(f"WARNING: transport measured {measured} bytes; "
                  f"accounting disagrees")
            mismatches += 1
        elif args.transport == "tcp":
            peer_counts = transport.peer_stats()
            print(f"measured on the socket: {measured} bytes "
                  f"({transport.stats.frames} frames; peer saw "
                  f"{peer_counts['bytes_received']} bytes) -- matches "
                  f"the trace exactly")
    finally:
        if peer is not None:
            transport.close(shutdown_peer=True)
            peer.join(timeout=10)
    return 1 if mismatches else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import socket

    from repro.core.serialization import load_deployment

    deployed = load_deployment(args.bundle)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((args.host, args.port))
    listener.listen(4)
    host, port = listener.getsockname()
    print(f"serving {args.bundle} ({deployed.kind}) on {host}:{port}",
          flush=True)
    with listener:
        deployed.serve(listener, max_connections=args.max_connections)
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.classifiers import LogisticRegressionClassifier
    from repro.privacy.inversion import (
        ModelInversionAttack,
        augment_with_model_output,
    )

    cohort = generate_warfarin(seed=args.seed)
    model = LogisticRegressionClassifier(iterations=150).fit(
        cohort.X, cohort.y
    )
    augmented = augment_with_model_output(cohort, model)
    attack = ModelInversionAttack(augmented)
    demographics = [
        augmented.feature_index(n)
        for n in ("race", "age_decade", "height_bin", "weight_bin", "gender")
    ]
    table = Table("Model-inversion escalation",
                  ["target", "knowledge", "accuracy", "advantage"])
    for target_name in ("vkorc1", "cyp2c9"):
        target = augmented.feature_index(target_name)
        reports = attack.escalation_curve(
            augmented.X[: args.victims], target, demographics
        )
        for stage, report in zip(
            ("prior", "+demographics", "+model output"), reports
        ):
            table.add_row([target_name, stage, report.attack_accuracy,
                           report.advantage])
    table.print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.smc.cost_model import calibrate_hardware_profile

    profile = calibrate_hardware_profile()
    table = Table(f"Calibrated profile: {profile.name}",
                  ["operation", "seconds"])
    for op, seconds in sorted(profile.op_seconds.items(),
                              key=lambda kv: kv[0].value):
        table.add_row([op.value, seconds])
    table.print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
