"""Durable per-client privacy-budget ledger (sqlite + migrations).

The paper prices disclosure for a *single* query; a served deployment
answers millions of queries from returning clients, and disclosed
features compose across requests -- an adversary who learns features
``{a, b}`` today and ``{c}`` tomorrow holds the posterior of
``{a, b, c}``. :class:`PrivacyLedger` makes that composition explicit
and enforceable: it durably records, per client identity, which
features have ever been disclosed and the *cumulative realized risk* of
that set, so the serving runtime can price each new request against the
client's remaining budget ``rho`` and degrade gracefully as the budget
depletes (shrink the disclosed set, then fall back to pure SMC).

Three properties the serving integration leans on:

1. **No double-charge.** A feature already disclosed to a client is
   free forever after: cumulative risk is the risk *of the set*, and
   ``risk(D | D)`` adds nothing. The ``disclosures`` table's primary key
   enforces the same rule durably.
2. **Budget is a cap on realized risk, not a token bucket.** ``spent``
   always equals the priced risk of the client's full disclosed set, so
   the invariant ``spent <= rho`` is exactly "the adversary's composed
   posterior gain never exceeds the budget".
3. **Durability with versioned schema.** The backing store is a single
   sqlite file with ``PRAGMA user_version``-tracked migrations: a
   ledger created by older code is upgraded in place on open, and the
   forward path is pinned by tests (v1 -> v2 under
   ``tests/privacy/test_ledger.py``).

The module deliberately imports only the standard library -- pricing
(numpy, the incremental evaluator) lives in
:mod:`repro.privacy.pricing`, and :mod:`repro.serving.budget` glues the
two together for the serving runtime. Operator workflow: see
``docs/PRIVACY.md`` and the ``python -m repro budget`` CLI.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class LedgerError(Exception):
    """Raised on invalid ledger operations or corrupt/newer schemas."""


#: Current schema version; ``PRAGMA user_version`` of a healthy ledger.
SCHEMA_VERSION = 2

#: Default per-client budget ``rho`` (normalized cumulative risk in
#: ``[0, 1]``) when the operator does not configure one.
DEFAULT_PRIVACY_BUDGET = 0.5

#: Ordered, append-only schema migrations. Each entry upgrades
#: ``user_version`` N-1 -> N inside one transaction; opening a ledger
#: applies every pending entry, so any historical file fast-forwards to
#: :data:`SCHEMA_VERSION`. Never edit a shipped entry -- append.
MIGRATIONS: Dict[int, str] = {
    # v1: the core ledger -- one row per client, one row per
    # (client, feature) disclosure. The disclosure primary key IS the
    # no-double-charge rule, durably.
    1: """
        CREATE TABLE clients (
            client_id  TEXT PRIMARY KEY,
            budget     REAL NOT NULL,
            spent      REAL NOT NULL DEFAULT 0.0,
            created_at TEXT NOT NULL,
            updated_at TEXT NOT NULL
        );
        CREATE TABLE disclosures (
            client_id  TEXT    NOT NULL,
            feature    INTEGER NOT NULL,
            request_id TEXT    NOT NULL,
            created_at TEXT    NOT NULL,
            PRIMARY KEY (client_id, feature)
        );
    """,
    # v2: the per-request charge journal (audit trail behind
    # ``repro budget inspect``) plus the hot-path index. Older ledgers
    # migrate in place; their charge history simply starts at the
    # upgrade.
    2: """
        CREATE TABLE charges (
            id          INTEGER PRIMARY KEY AUTOINCREMENT,
            client_id   TEXT NOT NULL,
            request_id  TEXT NOT NULL,
            features    TEXT NOT NULL,
            delta       REAL NOT NULL,
            spent_after REAL NOT NULL,
            mode        TEXT NOT NULL,
            created_at  TEXT NOT NULL
        );
        CREATE INDEX idx_charges_client ON charges (client_id);
        CREATE INDEX idx_disclosures_client ON disclosures (client_id);
    """,
}


def _utcnow() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass(frozen=True)
class ClientRecord:
    """One client's ledger state, as the CLI and tests read it.

    ``spent`` is the cumulative realized risk of ``disclosed`` (the
    priced risk of the *set*, not a sum of per-feature prices), and
    ``remaining`` the headroom left under the client's budget.
    """

    client_id: str
    budget: float
    spent: float
    disclosed: Tuple[int, ...]
    charges: int
    created_at: str
    updated_at: str

    @property
    def remaining(self) -> float:
        return max(0.0, self.budget - self.spent)

    def to_dict(self) -> Dict[str, object]:
        return {
            "client_id": self.client_id,
            "budget": self.budget,
            "spent": self.spent,
            "remaining": self.remaining,
            "disclosed": list(self.disclosed),
            "charges": self.charges,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }


@dataclass(frozen=True)
class ChargeRecord:
    """One row of the charge journal (schema v2's audit trail)."""

    client_id: str
    request_id: str
    features: Tuple[int, ...]
    delta: float
    spent_after: float
    mode: str
    created_at: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "client_id": self.client_id,
            "request_id": self.request_id,
            "features": list(self.features),
            "delta": self.delta,
            "spent_after": self.spent_after,
            "mode": self.mode,
            "created_at": self.created_at,
        }


class PrivacyLedger:
    """Durable per-client privacy-budget ledger backed by sqlite.

    Records, per client identity (the handshake keyring fingerprint in
    the serving runtime), every feature ever disclosed and the
    cumulative realized privacy risk of that set, so repeated queries
    compose correctly: already-disclosed features are never charged
    twice, and the recorded ``spent`` can never exceed the client's
    budget ``rho``. The schema is versioned (``PRAGMA user_version``)
    and migrates forward automatically on open.

    Thread-safe: one connection guarded by a lock, so the concurrent
    serving runtime's handler threads can charge through a shared
    instance. Cross-process sharing goes through the fleet frontend
    (one ledger, one writer) rather than shared file handles.

    Example::

        from repro.privacy.ledger import PrivacyLedger

        with PrivacyLedger("budget.db", default_budget=0.3) as ledger:
            ledger.charge("pk-ab12", features=[0, 4], delta=0.11,
                          spent_after=0.11, request_id="req-1",
                          mode="full")
            record = ledger.client("pk-ab12")
            assert record.disclosed == (0, 4)
            assert record.remaining == 0.19
    """

    def __init__(
        self,
        path: str,
        default_budget: float = DEFAULT_PRIVACY_BUDGET,
        target_version: Optional[int] = None,
    ) -> None:
        """Open (creating and/or migrating) the ledger at ``path``.

        ``default_budget`` seeds new clients' ``rho``. ``target_version``
        stops migrations early -- the forward-compatibility test hook
        that creates a v1 file for newer code to upgrade; production
        callers leave it ``None`` (= :data:`SCHEMA_VERSION`).
        """
        if not 0.0 <= float(default_budget) <= 1.0:
            raise LedgerError(
                f"default_budget must be a normalized risk in [0, 1], "
                f"got {default_budget}"
            )
        self.path = path
        self.default_budget = float(default_budget)
        directory = os.path.dirname(os.path.abspath(path))
        if directory and not os.path.isdir(directory):
            raise LedgerError(f"ledger directory does not exist: {directory}")
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._migrate(target_version or SCHEMA_VERSION)

    # -- schema ----------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The backing file's ``PRAGMA user_version``."""
        with self._lock:
            return int(
                self._conn.execute("PRAGMA user_version").fetchone()[0]
            )

    def _migrate(self, target: int) -> None:
        if target > SCHEMA_VERSION:
            raise LedgerError(
                f"cannot migrate to unknown schema version {target} "
                f"(this build knows up to {SCHEMA_VERSION})"
            )
        with self._lock:
            current = int(
                self._conn.execute("PRAGMA user_version").fetchone()[0]
            )
            if current > SCHEMA_VERSION:
                raise LedgerError(
                    f"ledger {self.path!r} was written by newer code "
                    f"(schema v{current}; this build knows up to "
                    f"v{SCHEMA_VERSION})"
                )
            for version in range(current + 1, target + 1):
                with self._conn:  # one transaction per migration step
                    self._conn.executescript(MIGRATIONS[version])
                    self._conn.execute(f"PRAGMA user_version = {version}")

    # -- write path ------------------------------------------------------

    def ensure_client(
        self, client_id: str, budget: Optional[float] = None
    ) -> ClientRecord:
        """The client's record, creating it (with ``budget`` or the
        ledger default) on first sight."""
        now = _utcnow()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO clients "
                "(client_id, budget, spent, created_at, updated_at) "
                "VALUES (?, ?, 0.0, ?, ?)",
                (client_id,
                 self.default_budget if budget is None else float(budget),
                 now, now),
            )
        return self.client(client_id)

    def charge(
        self,
        client_id: str,
        features: Sequence[int],
        delta: float,
        spent_after: float,
        request_id: str,
        mode: str = "full",
    ) -> None:
        """Record one request's charge atomically.

        ``features`` are the *newly* disclosed features (may be empty
        for a fully-degraded or all-repeat request); ``delta`` the
        marginal realized risk this request added; ``spent_after`` the
        client's cumulative realized risk after the charge (the priced
        risk of the full disclosed set -- the caller computed it, the
        ledger stores it verbatim). Already-present features are
        ignored by the disclosure table's primary key, so a replayed
        charge cannot double-count.
        """
        if delta < -1e-9:
            raise LedgerError(f"negative charge delta {delta}")
        self.ensure_client(client_id)
        now = _utcnow()
        with self._lock, self._conn:
            for feature in features:
                self._conn.execute(
                    "INSERT OR IGNORE INTO disclosures "
                    "(client_id, feature, request_id, created_at) "
                    "VALUES (?, ?, ?, ?)",
                    (client_id, int(feature), request_id, now),
                )
            self._conn.execute(
                "UPDATE clients SET spent = ?, updated_at = ? "
                "WHERE client_id = ?",
                (float(spent_after), now, client_id),
            )
            try:
                self._conn.execute(
                    "INSERT INTO charges (client_id, request_id, features, "
                    "delta, spent_after, mode, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (client_id, request_id,
                     json.dumps([int(f) for f in features]),
                     float(delta), float(spent_after), mode, now),
                )
            except sqlite3.OperationalError:
                pass  # pre-v2 ledger: no charge journal yet

    def reset(self, client_id: Optional[str] = None) -> int:
        """Forget one client's history (or every client's, when
        ``None``); returns the number of client rows removed.

        This *grants budget back*: only run it when the real-world
        exposure is void too (key rotation, data-subject deletion) --
        see the runbook in ``docs/PRIVACY.md``.
        """
        with self._lock, self._conn:
            if client_id is None:
                removed = self._conn.execute(
                    "SELECT COUNT(*) FROM clients"
                ).fetchone()[0]
                for table in ("charges", "disclosures", "clients"):
                    try:
                        self._conn.execute(f"DELETE FROM {table}")
                    except sqlite3.OperationalError:
                        pass  # pre-v2 ledger: no charge journal yet
                return int(removed)
            removed = self._conn.execute(
                "SELECT COUNT(*) FROM clients WHERE client_id = ?",
                (client_id,),
            ).fetchone()[0]
            for table in ("charges", "disclosures", "clients"):
                try:
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE client_id = ?",
                        (client_id,),
                    )
                except sqlite3.OperationalError:
                    pass  # pre-v2 ledger: no charge journal yet
            return int(removed)

    # -- read path -------------------------------------------------------

    def client(self, client_id: str) -> ClientRecord:
        """One client's state; raises :class:`LedgerError` if unknown."""
        with self._lock:
            row = self._conn.execute(
                "SELECT budget, spent, created_at, updated_at "
                "FROM clients WHERE client_id = ?",
                (client_id,),
            ).fetchone()
            if row is None:
                raise LedgerError(f"unknown client {client_id!r}")
            disclosed = tuple(
                int(r[0]) for r in self._conn.execute(
                    "SELECT feature FROM disclosures "
                    "WHERE client_id = ? ORDER BY feature",
                    (client_id,),
                )
            )
            try:
                charges = int(self._conn.execute(
                    "SELECT COUNT(*) FROM charges WHERE client_id = ?",
                    (client_id,),
                ).fetchone()[0])
            except sqlite3.OperationalError:
                charges = 0  # pre-v2 ledger: no charge journal yet
        return ClientRecord(
            client_id=client_id,
            budget=float(row[0]),
            spent=float(row[1]),
            disclosed=disclosed,
            charges=charges,
            created_at=str(row[2]),
            updated_at=str(row[3]),
        )

    def disclosed(self, client_id: str) -> Tuple[int, ...]:
        """The features ever disclosed to ``client_id`` (empty for an
        unknown client -- reading never creates rows)."""
        with self._lock:
            return tuple(
                int(r[0]) for r in self._conn.execute(
                    "SELECT feature FROM disclosures "
                    "WHERE client_id = ? ORDER BY feature",
                    (client_id,),
                )
            )

    def clients(self) -> List[str]:
        """Every known client id, sorted."""
        with self._lock:
            return [
                str(r[0]) for r in self._conn.execute(
                    "SELECT client_id FROM clients ORDER BY client_id"
                )
            ]

    def top(self, limit: int = 10) -> List[ClientRecord]:
        """The ``limit`` clients with the highest cumulative spend."""
        with self._lock:
            ids = [
                str(r[0]) for r in self._conn.execute(
                    "SELECT client_id FROM clients "
                    "ORDER BY spent DESC, client_id LIMIT ?",
                    (int(limit),),
                )
            ]
        return [self.client(client_id) for client_id in ids]

    def charges(
        self, client_id: str, limit: int = 50
    ) -> List[ChargeRecord]:
        """The client's most recent charge-journal rows, newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT client_id, request_id, features, delta, "
                "spent_after, mode, created_at FROM charges "
                "WHERE client_id = ? ORDER BY id DESC LIMIT ?",
                (client_id, int(limit)),
            ).fetchall()
        return [
            ChargeRecord(
                client_id=str(r[0]),
                request_id=str(r[1]),
                features=tuple(int(f) for f in json.loads(r[2])),
                delta=float(r[3]),
                spent_after=float(r[4]),
                mode=str(r[5]),
                created_at=str(r[6]),
            )
            for r in rows
        ]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Flush and close the backing connection."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "PrivacyLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
