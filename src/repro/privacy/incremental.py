"""Fast incremental privacy-loss computation.

The paper's enabling mechanism: the disclosure optimizer evaluates the
risk of thousands of candidate sets ``S + {f}`` while searching, and
recomputing each from scratch costs ``O(|S| * m * k)`` (per-row belief
products over every disclosed feature). Under the conditionally-
independent adversary the posterior factorises, so a cached per-row
log-belief state makes the *marginal* risk of one more feature
``O(m * k)`` -- independent of ``|S|``.

:class:`IncrementalRiskEvaluator` maintains that state with push/pop
semantics (a stack, matching depth-first search in greedy and
branch-and-bound) and a non-mutating ``peek_risk`` for candidate
scoring. Experiment E7 measures the resulting speedup against the
from-scratch evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.privacy.adversary import NaiveBayesAdversary
from repro.privacy.risk import RiskError, RiskMetric

# Log-weight that turns a row's belief into a numerical point mass when
# the sensitive attribute itself is disclosed (exp(300) dwarfs any
# realistic likelihood product while keeping arithmetic finite and
# exactly reversible on pop()).
_LOG_CERTAINTY = 300.0


class IncrementalRiskEvaluator:
    """Stack-structured risk evaluator with cached belief states.

    Parameters
    ----------
    adversary:
        Must be a :class:`NaiveBayesAdversary` -- the factorised
        posterior is what makes incremental updates exact.
    evaluation_rows:
        Records risk is averaged over, shape ``(m, d)``.
    sensitive_columns:
        The adversary's targets.
    metric:
        Aggregation metric (same semantics as
        :class:`repro.privacy.risk.RiskModel`).
    """

    def __init__(
        self,
        adversary: NaiveBayesAdversary,
        evaluation_rows: np.ndarray,
        sensitive_columns: Sequence[int],
        metric: RiskMetric = RiskMetric.MAX_POSTERIOR,
        background_columns: Sequence[int] = (),
    ) -> None:
        if not isinstance(adversary, NaiveBayesAdversary):
            raise RiskError(
                "incremental evaluation requires the factorised "
                "(naive-Bayes) adversary"
            )
        self.adversary = adversary
        self.rows = np.asarray(evaluation_rows)
        self.sensitive_columns = list(sensitive_columns)
        self.metric = metric
        self.background_columns = tuple(sorted(set(background_columns)))
        if set(self.background_columns) & set(self.sensitive_columns):
            raise RiskError("sensitive columns cannot be background knowledge")
        m = len(self.rows)

        # Per-sensitive-column cached log-belief matrices (m, dom_t).
        # Background (already-public) columns are folded into the
        # baseline belief, so disclosing them again costs nothing.
        self._log_beliefs: Dict[int, np.ndarray] = {}
        self._baselines: Dict[int, float] = {}
        for t in self.sensitive_columns:
            prior = adversary.prior(t)
            beliefs = np.tile(np.log(prior), (m, 1))
            for column in self.background_columns:
                beliefs += self._raw_delta(t, column)
            self._log_beliefs[t] = beliefs
            self._baselines[t] = self._score(t, beliefs)
        self._stack: List[int] = []

    # -- stack interface ---------------------------------------------------

    @property
    def disclosed(self) -> Tuple[int, ...]:
        """The currently pushed disclosure set, in push order."""
        return tuple(self._stack)

    def push(self, feature: int) -> None:
        """Extend the current disclosure set with ``feature``."""
        self._validate_feature(feature)
        if feature in self._stack:
            raise RiskError(f"feature {feature} already disclosed")
        for t in self.sensitive_columns:
            self._log_beliefs[t] += self._delta(t, feature)
        self._stack.append(feature)

    def pop(self) -> int:
        """Undo the most recent push; returns the removed feature."""
        if not self._stack:
            raise RiskError("pop from an empty disclosure stack")
        feature = self._stack.pop()
        for t in self.sensitive_columns:
            self._log_beliefs[t] -= self._delta(t, feature)
        return feature

    def reset(self) -> None:
        """Pop everything."""
        while self._stack:
            self.pop()

    # -- risk queries -----------------------------------------------------

    def risk(self) -> float:
        """Normalised privacy loss of the current disclosure set."""
        losses = [
            self._normalised(t, self._log_beliefs[t])
            for t in self.sensitive_columns
        ]
        return float(np.mean(losses))

    def peek_risk(self, feature: int) -> float:
        """Risk of ``current set + {feature}`` without mutating state."""
        self._validate_feature(feature)
        if feature in self._stack:
            raise RiskError(f"feature {feature} already disclosed")
        losses = []
        for t in self.sensitive_columns:
            trial = self._log_beliefs[t] + self._delta(t, feature)
            losses.append(self._normalised(t, trial))
        return float(np.mean(losses))

    def risk_of_set(self, disclosure_set: Iterable[int]) -> float:
        """From-scratch risk of an arbitrary set (naive baseline; used
        by E7 to measure the incremental speedup and by tests to verify
        exactness)."""
        columns = sorted(set(disclosure_set))
        losses = []
        for t in self.sensitive_columns:
            prior = self.adversary.prior(t)
            log_beliefs = np.tile(np.log(prior), (len(self.rows), 1))
            for feature in columns:
                self._validate_feature(feature)
                log_beliefs += self._delta(t, feature)
            losses.append(self._normalised(t, log_beliefs))
        return float(np.mean(losses))

    def as_risk_function(self):
        """Adapt to the set-based ``risk(columns) -> float`` signature
        the solvers consume, keeping the cached state synchronised.

        The adapter diffs each requested set against the evaluator's
        current stack and applies the minimal pops/pushes, so solver
        access patterns (greedy's ``S + {f}`` probes, B&B's depth-first
        walks) hit the incremental fast path automatically.
        """

        def risk(columns) -> float:
            target = {
                int(c)
                for c in columns
                if int(c) not in self.background_columns
            }
            # Pop until the stack is a subset of the target...
            while not set(self._stack) <= target:
                self.pop()
            # ...then push whatever is missing.
            for feature in sorted(target - set(self._stack)):
                self.push(feature)
            return self.risk()

        return risk

    # -- internals --------------------------------------------------------

    def _raw_delta(self, sensitive: int, feature: int) -> np.ndarray:
        """Per-row log-likelihood contribution of one feature."""
        table = self.adversary.likelihood_column(sensitive, feature)
        return np.log(table[:, self.rows[:, feature]]).T

    def _delta(self, sensitive: int, feature: int) -> np.ndarray:
        """Marginal contribution of disclosing ``feature`` now.

        Background columns contribute nothing (the adversary already
        conditions on them); disclosing the sensitive attribute itself
        drives its own posterior to a point mass via a dominating
        log-weight on each row's true value.
        """
        dom = len(self.adversary.prior(sensitive))
        if feature in self.background_columns:
            return np.zeros((len(self.rows), dom))
        if feature == sensitive:
            delta = np.zeros((len(self.rows), dom))
            delta[np.arange(len(self.rows)), self.rows[:, sensitive]] = (
                _LOG_CERTAINTY
            )
            return delta
        return self._raw_delta(sensitive, feature)

    def _validate_feature(self, feature: int) -> None:
        if not 0 <= feature < self.rows.shape[1]:
            raise RiskError(
                f"feature {feature} outside 0..{self.rows.shape[1] - 1}"
            )

    def _score(self, sensitive: int, log_beliefs: np.ndarray) -> float:
        shifted = log_beliefs - log_beliefs.max(axis=1, keepdims=True)
        beliefs = np.exp(shifted)
        beliefs /= beliefs.sum(axis=1, keepdims=True)
        if self.metric is RiskMetric.MAX_POSTERIOR:
            return float(beliefs.max(axis=1).mean())
        if self.metric is RiskMetric.ENTROPY:
            clipped = np.clip(beliefs, 1e-12, 1.0)
            return float(-(-(clipped * np.log2(clipped)).sum(axis=1)).mean())
        truths = self.rows[:, sensitive]
        return float((beliefs.argmax(axis=1) == truths).mean())

    def _normalised(self, sensitive: int, log_beliefs: np.ndarray) -> float:
        baseline = self._baselines[sensitive]
        achieved = self._score(sensitive, log_beliefs)
        ceiling = 0.0 if self.metric is RiskMetric.ENTROPY else 1.0
        if ceiling - baseline <= 1e-12:
            return 0.0
        return float(np.clip((achieved - baseline) / (ceiling - baseline), 0.0, 1.0))
