"""Noisy disclosure via randomized response (extension).

The paper discloses feature values *exactly*; a natural extension --
and the standard tool when even a single attribute is too revealing --
is to disclose through a **randomized response** channel: report the
true category with probability ``keep + (1-keep)/D``, otherwise a
uniformly random one. This trades a little classifier accuracy (the
server computes on the reported value) for a quantifiable reduction in
adversary gain, and satisfies ``epsilon``-local differential privacy
with ``epsilon = ln((keep*D + (1-keep)) / (1-keep))``.

Integration points:

* :func:`randomized_response_channel` builds the ``D x D`` channel
  matrix; :func:`perturb_column` / :func:`perturb_rows` apply it;
* :class:`NoisyDisclosureAdversary` composes the channel into the
  factorised adversary's likelihood tables, so the existing risk
  machinery (:class:`~repro.privacy.risk.RiskModel`,
  :class:`~repro.privacy.incremental.IncrementalRiskEvaluator`) prices
  noisy disclosure without modification;
* :func:`accuracy_under_noise` measures the utility cost on any fitted
  classifier.

Experiment E14 sweeps the keep-probability into a second trade-off
curve (risk vs accuracy at fixed disclosure set).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro.privacy.adversary import AdversaryError, NaiveBayesAdversary


class RandomizedResponseError(Exception):
    """Raised on invalid channel parameters."""


def randomized_response_channel(domain_size: int, keep: float) -> np.ndarray:
    """The RR channel matrix ``C[v, r] = P(report r | true v)``.

    Parameters
    ----------
    domain_size:
        Number of categories ``D``.
    keep:
        Probability mass placed on the true value *before* the uniform
        smoothing; ``keep = 1`` is exact disclosure, ``keep = 0`` is a
        uniformly random report (no information).
    """
    if domain_size < 2:
        raise RandomizedResponseError(
            f"domain must have at least 2 values, got {domain_size}"
        )
    if not 0.0 <= keep <= 1.0:
        raise RandomizedResponseError(f"keep must be in [0, 1], got {keep}")
    channel = np.full(
        (domain_size, domain_size), (1.0 - keep) / domain_size
    )
    channel += keep * np.eye(domain_size)
    return channel


def epsilon_of_channel(domain_size: int, keep: float) -> float:
    """The local-DP ``epsilon`` of the RR channel (``inf`` at keep=1)."""
    if keep >= 1.0:
        return math.inf
    truthful = keep + (1.0 - keep) / domain_size
    lying = (1.0 - keep) / domain_size
    return math.log(truthful / lying)


def perturb_column(
    values: np.ndarray, channel: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample reports for one column through the channel."""
    values = np.asarray(values)
    domain = channel.shape[0]
    if values.min() < 0 or values.max() >= domain:
        raise RandomizedResponseError(
            f"values outside the channel's domain [0, {domain})"
        )
    uniform = rng.random((len(values), 1))
    cumulative = channel.cumsum(axis=1)
    return (uniform > cumulative[values]).sum(axis=1).astype(np.int64)


def perturb_rows(
    rows: np.ndarray,
    channels: Dict[int, np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply per-column channels; unlisted columns pass through."""
    noisy = np.asarray(rows).copy()
    for column, channel in channels.items():
        noisy[:, column] = perturb_column(noisy[:, column], channel, rng)
    return noisy


class NoisyDisclosureAdversary(NaiveBayesAdversary):
    """The factorised adversary observing *reports* instead of values.

    For a noisy column ``f``, the adversary's likelihood becomes
    ``P(report r | t) = sum_v P(v | t) * C[v, r]`` -- the base table
    composed with the channel. Clean columns keep their tables, and
    directly disclosing a sensitive attribute through a channel no
    longer yields a point mass (the channel caps the adversary's
    certainty).
    """

    def __init__(
        self,
        base: NaiveBayesAdversary,
        channels: Dict[int, np.ndarray],
    ) -> None:
        # Rebuild from the base adversary's data, then compose tables.
        super().__init__(
            base.data, base.domain_sizes, base.sensitive_columns,
            alpha=base.alpha,
        )
        self.channels = dict(channels)
        for column, channel in self.channels.items():
            expected = self.domain_sizes[column]
            if channel.shape != (expected, expected):
                raise RandomizedResponseError(
                    f"channel for column {column} has shape {channel.shape}, "
                    f"expected ({expected}, {expected})"
                )
        for t in self.sensitive_columns:
            for column, channel in self.channels.items():
                if column == t:
                    continue
                composed = self._conditionals[t][column] @ channel
                self._conditionals[t][column] = composed
                self._log_conditionals[t][column] = np.log(composed)

    def posterior(self, sensitive_column: int, evidence: Dict[int, int]):
        """Like the base adversary, except a noisily-disclosed sensitive
        attribute updates through its channel rather than collapsing to
        a point mass."""
        if (
            sensitive_column in evidence
            and sensitive_column in self.channels
        ):
            evidence = dict(evidence)
            report = evidence.pop(sensitive_column)
            base = super().posterior(sensitive_column, evidence)
            channel = self.channels[sensitive_column]
            weighted = base * channel[:, report]
            return weighted / weighted.sum()
        return super().posterior(sensitive_column, evidence)


def accuracy_under_noise(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    channels: Dict[int, np.ndarray],
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Accuracy when the listed columns are reported through channels.

    Models the deployment: the server computes on the *reported* values
    of noisily-disclosed features (hidden features stay exact, so only
    the channel columns are perturbed).
    """
    rng = rng or np.random.default_rng(0)
    noisy = perturb_rows(features, channels, rng)
    predictions = model.predict(noisy)
    return float((np.asarray(predictions) == np.asarray(labels)).mean())
