"""Exact empirical joint distributions over small column subsets.

An :class:`EmpiricalJoint` is a dense probability tensor over a handful
of categorical columns, estimated from data with Laplace smoothing. It
is the reference model for the Bayesian adversary (exact but
exponential in the number of columns) and the building block for
pairwise statistics (mutual information for Chow-Liu learning).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class DistributionError(Exception):
    """Raised on invalid distribution construction or queries."""


class EmpiricalJoint:
    """Dense joint distribution over selected categorical columns.

    Parameters
    ----------
    table:
        Probability tensor; axis ``k`` ranges over the domain of
        ``column_indices[k]``.
    column_indices:
        The dataset column each axis corresponds to.
    """

    def __init__(self, table: np.ndarray, column_indices: Sequence[int]) -> None:
        table = np.asarray(table, dtype=float)
        if table.ndim != len(column_indices):
            raise DistributionError(
                f"table rank {table.ndim} vs {len(column_indices)} columns"
            )
        if table.size == 0:
            raise DistributionError("empty probability table")
        if not np.isclose(table.sum(), 1.0, atol=1e-8):
            raise DistributionError(
                f"probabilities sum to {table.sum():.6f}, expected 1"
            )
        if (table < 0).any():
            raise DistributionError("negative probabilities")
        self.table = table
        self.column_indices = list(column_indices)

    @staticmethod
    def from_data(
        data: np.ndarray,
        column_indices: Sequence[int],
        domain_sizes: Sequence[int],
        alpha: float = 0.5,
    ) -> "EmpiricalJoint":
        """Estimate a smoothed joint over ``column_indices``.

        Parameters
        ----------
        data:
            Full integer-coded matrix (all columns).
        column_indices:
            Which columns to model (the tensor axes, in this order).
        domain_sizes:
            Domain size per *selected* column.
        alpha:
            Laplace pseudo-count per cell.
        """
        if alpha < 0:
            raise DistributionError(f"alpha must be non-negative, got {alpha}")
        if len(column_indices) != len(domain_sizes):
            raise DistributionError(
                f"{len(column_indices)} columns vs {len(domain_sizes)} domains"
            )
        shape = tuple(domain_sizes)
        counts = np.full(shape, alpha, dtype=float)
        selected = np.asarray(data)[:, list(column_indices)]
        np.add.at(counts, tuple(selected[:, k] for k in range(len(column_indices))), 1.0)
        return EmpiricalJoint(counts / counts.sum(), column_indices)

    @property
    def domain_sizes(self) -> Tuple[int, ...]:
        """Axis lengths of the probability tensor."""
        return self.table.shape

    def axis_of(self, column_index: int) -> int:
        """Tensor axis corresponding to a dataset column."""
        try:
            return self.column_indices.index(column_index)
        except ValueError:
            raise DistributionError(
                f"column {column_index} not part of this joint "
                f"(columns: {self.column_indices})"
            ) from None

    def marginal(self, keep_columns: Sequence[int]) -> "EmpiricalJoint":
        """Marginalise down to ``keep_columns`` (dataset column ids)."""
        keep_axes = [self.axis_of(c) for c in keep_columns]
        drop_axes = tuple(
            axis for axis in range(self.table.ndim) if axis not in keep_axes
        )
        reduced = self.table.sum(axis=drop_axes) if drop_axes else self.table.copy()
        # Reorder axes to match the requested column order.
        kept_in_tensor_order = [c for c in self.column_indices if c in set(keep_columns)]
        permutation = [kept_in_tensor_order.index(c) for c in keep_columns]
        reduced = np.transpose(reduced, permutation)
        return EmpiricalJoint(reduced, keep_columns)

    def condition(self, evidence: Dict[int, int]) -> "EmpiricalJoint":
        """Condition on ``{column: value}`` evidence; remaining columns
        keep their order."""
        table = self.table
        remaining = list(self.column_indices)
        for column, value in evidence.items():
            axis = remaining.index(column) if column in remaining else None
            if axis is None:
                raise DistributionError(f"column {column} not in this joint")
            size = table.shape[axis]
            if not 0 <= value < size:
                raise DistributionError(
                    f"value {value} outside domain [0, {size}) of column {column}"
                )
            table = np.take(table, value, axis=axis)
            remaining.pop(axis)
        total = table.sum()
        if total <= 0:
            raise DistributionError(
                f"evidence {evidence} has zero probability (increase smoothing)"
            )
        return EmpiricalJoint(table / total, remaining)

    def probability(self, assignment: Dict[int, int]) -> float:
        """Probability of a full assignment ``{column: value}``."""
        if set(assignment) != set(self.column_indices):
            raise DistributionError(
                "assignment must cover exactly the joint's columns"
            )
        index = tuple(assignment[c] for c in self.column_indices)
        return float(self.table[index])

    def entropy(self) -> float:
        """Shannon entropy in bits."""
        flat = self.table.reshape(-1)
        nonzero = flat[flat > 0]
        return float(-(nonzero * np.log2(nonzero)).sum())

    def mutual_information(self, column_a: int, column_b: int) -> float:
        """Mutual information (bits) between two columns of this joint."""
        pair = self.marginal([column_a, column_b]).table
        pa = pair.sum(axis=1, keepdims=True)
        pb = pair.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(pair > 0, pair / (pa * pb), 1.0)
            terms = np.where(pair > 0, pair * np.log2(ratio), 0.0)
        return float(max(0.0, terms.sum()))


def pairwise_mutual_information(
    data: np.ndarray, domain_sizes: Sequence[int], alpha: float = 0.5
) -> np.ndarray:
    """Symmetric matrix of pairwise mutual information between columns.

    Used by Chow-Liu structure learning; cost is quadratic in the
    number of columns and linear in the data size.
    """
    data = np.asarray(data)
    n_columns = data.shape[1]
    if n_columns != len(domain_sizes):
        raise DistributionError(
            f"{n_columns} data columns vs {len(domain_sizes)} domains"
        )
    matrix = np.zeros((n_columns, n_columns))
    for a in range(n_columns):
        for b in range(a + 1, n_columns):
            joint = EmpiricalJoint.from_data(
                data, [a, b], [domain_sizes[a], domain_sizes[b]], alpha=alpha
            )
            value = joint.mutual_information(a, b)
            matrix[a, b] = matrix[b, a] = value
    return matrix
