"""Bayesian adversaries: posterior inference over sensitive attributes.

The adversary observes the disclosed feature values of a record and
computes a posterior over each sensitive attribute. Three instantiations
trade fidelity against speed:

* :class:`NaiveBayesAdversary` -- assumes disclosed features are
  conditionally independent given the sensitive attribute. Posterior
  updates are per-feature multiplicative, which is what enables the
  paper's fast incremental risk computation
  (:mod:`repro.privacy.incremental`).
* :class:`ExactJointAdversary` -- materialises the exact smoothed joint
  over ``S + {sensitive}``; the gold standard for small ``|S|``.
* :class:`ChowLiuAdversary` -- exact inference in a Chow-Liu tree
  approximation of the joint; scales to many features.

All adversaries share the :class:`BayesianAdversary` interface:
``posterior(sensitive_column, evidence)`` returning a probability
vector over the sensitive attribute's domain.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.privacy.bayesnet import ChowLiuTree
from repro.privacy.distribution import EmpiricalJoint


class AdversaryError(Exception):
    """Raised on invalid adversary queries."""


class BayesianAdversary(abc.ABC):
    """Interface: posterior over a sensitive column given evidence."""

    def __init__(
        self,
        data: np.ndarray,
        domain_sizes: Sequence[int],
        sensitive_columns: Sequence[int],
    ) -> None:
        self.data = np.asarray(data)
        self.domain_sizes = list(domain_sizes)
        self.sensitive_columns = list(sensitive_columns)
        if not self.sensitive_columns:
            raise AdversaryError("at least one sensitive column is required")
        for column in self.sensitive_columns:
            if not 0 <= column < self.data.shape[1]:
                raise AdversaryError(f"sensitive column {column} out of range")

    @abc.abstractmethod
    def posterior(
        self, sensitive_column: int, evidence: Dict[int, int]
    ) -> np.ndarray:
        """``P(sensitive | evidence)`` as a probability vector.

        When the sensitive column itself appears in the evidence (the
        record owner chose to disclose it), the posterior is a point
        mass on the disclosed value -- total privacy loss for that
        attribute.
        """

    def _point_mass(self, sensitive_column: int, value: int) -> np.ndarray:
        """Degenerate posterior for a directly disclosed attribute."""
        size = self.domain_sizes[sensitive_column]
        if not 0 <= value < size:
            raise AdversaryError(
                f"disclosed value {value} outside domain [0, {size})"
            )
        mass = np.zeros(size)
        mass[value] = 1.0
        return mass

    def prior(self, sensitive_column: int) -> np.ndarray:
        """``P(sensitive)`` -- posterior with no evidence."""
        return self.posterior(sensitive_column, {})

    def _check_sensitive(self, sensitive_column: int) -> None:
        if sensitive_column not in self.sensitive_columns:
            raise AdversaryError(
                f"column {sensitive_column} is not a declared sensitive column "
                f"(declared: {self.sensitive_columns})"
            )


class NaiveBayesAdversary(BayesianAdversary):
    """Conditionally-independent adversary.

    Model: ``P(x_S | t) = prod_{f in S} P(x_f | t)`` for each sensitive
    attribute ``t``. The per-feature conditional tables are estimated
    with Laplace smoothing at construction; a posterior query is a
    product of table lookups.
    """

    def __init__(
        self,
        data: np.ndarray,
        domain_sizes: Sequence[int],
        sensitive_columns: Sequence[int],
        alpha: float = 0.5,
    ) -> None:
        super().__init__(data, domain_sizes, sensitive_columns)
        self.alpha = alpha
        # conditionals[t][f] is a (dom_t, dom_f) table of P(x_f | t).
        self._conditionals: Dict[int, Dict[int, np.ndarray]] = {}
        self._priors: Dict[int, np.ndarray] = {}
        n_columns = self.data.shape[1]
        for t in self.sensitive_columns:
            dom_t = self.domain_sizes[t]
            counts = np.full(dom_t, alpha)
            np.add.at(counts, self.data[:, t], 1.0)
            self._priors[t] = counts / counts.sum()
            tables: Dict[int, np.ndarray] = {}
            for f in range(n_columns):
                if f == t:
                    continue
                table = np.full((dom_t, self.domain_sizes[f]), alpha)
                np.add.at(table, (self.data[:, t], self.data[:, f]), 1.0)
                tables[f] = table / table.sum(axis=1, keepdims=True)
            self._conditionals[t] = tables
        self._log_conditionals: Dict[int, Dict[int, np.ndarray]] = {
            t: {f: np.log(table) for f, table in tables.items()}
            for t, tables in self._conditionals.items()
        }

    def posterior(
        self, sensitive_column: int, evidence: Dict[int, int]
    ) -> np.ndarray:
        self._check_sensitive(sensitive_column)
        if sensitive_column in evidence:
            return self._point_mass(sensitive_column, evidence[sensitive_column])
        log_belief = np.log(self._priors[sensitive_column])
        tables = self._log_conditionals[sensitive_column]
        for column, value in evidence.items():
            log_belief = log_belief + tables[column][:, value]
        log_belief -= log_belief.max()
        belief = np.exp(log_belief)
        return belief / belief.sum()

    def likelihood_column(self, sensitive_column: int, feature: int) -> np.ndarray:
        """The ``(dom_t, dom_f)`` table ``P(x_f | t)`` -- exposed for the
        incremental evaluator's cached updates."""
        self._check_sensitive(sensitive_column)
        return self._conditionals[sensitive_column][feature]

    def prior(self, sensitive_column: int) -> np.ndarray:
        self._check_sensitive(sensitive_column)
        return self._priors[sensitive_column].copy()


class ExactJointAdversary(BayesianAdversary):
    """Reference adversary over the exact smoothed joint.

    Posterior queries materialise the joint over ``evidence columns +
    sensitive`` -- exponential in ``|S|``, so only usable for small
    disclosure sets; used to validate the fast adversaries.
    """

    def __init__(
        self,
        data: np.ndarray,
        domain_sizes: Sequence[int],
        sensitive_columns: Sequence[int],
        alpha: float = 0.5,
        max_cells: int = 2_000_000,
    ) -> None:
        super().__init__(data, domain_sizes, sensitive_columns)
        self.alpha = alpha
        self.max_cells = max_cells
        self._cache: Dict[tuple, EmpiricalJoint] = {}

    def posterior(
        self, sensitive_column: int, evidence: Dict[int, int]
    ) -> np.ndarray:
        self._check_sensitive(sensitive_column)
        if sensitive_column in evidence:
            return self._point_mass(sensitive_column, evidence[sensitive_column])
        columns = sorted(evidence) + [sensitive_column]
        cells = int(np.prod([self.domain_sizes[c] for c in columns]))
        if cells > self.max_cells:
            raise AdversaryError(
                f"exact joint over {columns} has {cells} cells "
                f"(> {self.max_cells}); use a factorised adversary"
            )
        key = tuple(columns)
        if key not in self._cache:
            self._cache[key] = EmpiricalJoint.from_data(
                self.data,
                columns,
                [self.domain_sizes[c] for c in columns],
                alpha=self.alpha,
            )
        joint = self._cache[key]
        conditioned = joint.condition(dict(evidence))
        return conditioned.table.copy()


class ChowLiuAdversary(BayesianAdversary):
    """Tree-structured adversary: exact inference in a Chow-Liu model."""

    def __init__(
        self,
        data: np.ndarray,
        domain_sizes: Sequence[int],
        sensitive_columns: Sequence[int],
        alpha: float = 0.5,
        tree: Optional[ChowLiuTree] = None,
    ) -> None:
        super().__init__(data, domain_sizes, sensitive_columns)
        self.tree = tree or ChowLiuTree.fit(self.data, self.domain_sizes, alpha=alpha)

    def posterior(
        self, sensitive_column: int, evidence: Dict[int, int]
    ) -> np.ndarray:
        self._check_sensitive(sensitive_column)
        if sensitive_column in evidence:
            return self._point_mass(sensitive_column, evidence[sensitive_column])
        return self.tree.posterior(sensitive_column, dict(evidence))
