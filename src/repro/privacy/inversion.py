"""Model-inversion attack simulation (Fredrikson et al., USENIX'14).

The paper's motivation: *"disclosing personalized drug dosage
recommendations, combined with several pieces of demographic knowledge,
can be leveraged to infer single nucleotide polymorphism variants of a
patient."* This module reproduces that attack surface so its strength
can be measured directly:

* :func:`augment_with_model_output` appends the classifier's
  *prediction* as an extra column, so the standard adversary machinery
  can condition on it like any other disclosed attribute;
* :class:`ModelInversionAttack` runs the end-to-end attack: given a set
  of known demographic columns (and optionally the model output), guess
  each record's sensitive attribute by MAP inference, and report the
  accuracy against the prior baseline.

Because pure SMC hides even the recommendation, the attack degrades to
the prior; each disclosure (demographics, then the output) measurably
improves it -- exactly the trade-off the main pipeline prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.schema import Dataset, FeatureSpec
from repro.privacy.adversary import NaiveBayesAdversary

MODEL_OUTPUT_FEATURE = "model_output"


class InversionError(Exception):
    """Raised on invalid attack configuration."""


def augment_with_model_output(dataset: Dataset, model) -> Dataset:
    """Return a copy of ``dataset`` with the model's prediction appended
    as a feature column named ``model_output``.

    The model must already be fitted on compatible columns; its
    predictions over the dataset's own rows define the new column (the
    attack models an adversary who observed the service's outputs for a
    population and learned the correlations).
    """
    predictions = np.asarray(model.predict(dataset.X))
    labels = sorted(set(int(p) for p in predictions))
    code_of = {label: i for i, label in enumerate(labels)}
    column = np.array([code_of[int(p)] for p in predictions], dtype=np.int64)
    output_spec = FeatureSpec(
        MODEL_OUTPUT_FEATURE,
        max(2, len(labels)),
        description="the classification service's output",
    )
    return Dataset(
        name=dataset.name + "+output",
        features=list(dataset.features) + [output_spec],
        X=np.column_stack([dataset.X, column]),
        y=dataset.y.copy(),
        label_name=dataset.label_name,
    )


@dataclass
class InversionReport:
    """Outcome of one attack configuration."""

    target_name: str
    known_columns: List[str]
    uses_model_output: bool
    prior_accuracy: float
    attack_accuracy: float

    @property
    def advantage(self) -> float:
        """Accuracy gain over always guessing the prior mode."""
        return self.attack_accuracy - self.prior_accuracy


class ModelInversionAttack:
    """MAP-inference attack against a sensitive attribute.

    Parameters
    ----------
    population:
        Dataset the adversary learned correlations from (augment it
        with :func:`augment_with_model_output` to include the service's
        outputs in the adversary's knowledge).
    sensitive_columns:
        Attack targets.
    alpha:
        Smoothing of the adversary's conditional tables.
    """

    def __init__(
        self,
        population: Dataset,
        sensitive_columns: Optional[Sequence[int]] = None,
        alpha: float = 0.5,
    ) -> None:
        self.population = population
        self.sensitive_columns = list(
            sensitive_columns
            if sensitive_columns is not None
            else population.sensitive_indices
        )
        if not self.sensitive_columns:
            raise InversionError("no sensitive columns to attack")
        self.adversary = NaiveBayesAdversary(
            population.X,
            population.domain_sizes,
            self.sensitive_columns,
            alpha=alpha,
        )

    def run(
        self,
        victims: np.ndarray,
        target: int,
        known_columns: Sequence[int],
    ) -> InversionReport:
        """Attack ``target`` on every victim row given ``known_columns``.

        Returns accuracy of the MAP guess against each victim's true
        value, next to the prior-mode baseline.
        """
        victims = np.asarray(victims)
        if target not in self.sensitive_columns:
            raise InversionError(
                f"column {target} is not a configured attack target"
            )
        known = [int(c) for c in known_columns]
        if target in known:
            raise InversionError("the target cannot be among known columns")

        prior = self.adversary.prior(target)
        prior_guess = int(np.argmax(prior))
        truths = victims[:, target]
        prior_accuracy = float((truths == prior_guess).mean())

        hits = 0
        for row in victims:
            evidence: Dict[int, int] = {c: int(row[c]) for c in known}
            posterior = self.adversary.posterior(target, evidence)
            hits += int(np.argmax(posterior)) == int(row[target])
        attack_accuracy = hits / len(victims)

        output_index = _output_column(self.population)
        return InversionReport(
            target_name=self.population.features[target].name,
            known_columns=[
                self.population.features[c].name for c in known
            ],
            uses_model_output=output_index in known,
            prior_accuracy=prior_accuracy,
            attack_accuracy=float(attack_accuracy),
        )

    def escalation_curve(
        self,
        victims: np.ndarray,
        target: int,
        demographic_columns: Sequence[int],
    ) -> List[InversionReport]:
        """The Fredrikson story in three steps: prior-only, then
        demographics, then demographics + the service's output."""
        output_index = _output_column(self.population)
        if output_index < 0:
            raise InversionError(
                "population has no model_output column; call "
                "augment_with_model_output first"
            )
        stages = [
            [],
            list(demographic_columns),
            list(demographic_columns) + [output_index],
        ]
        return [self.run(victims, target, stage) for stage in stages]


def _output_column(dataset: Dataset) -> int:
    """Index of the model-output column, or -1 when absent."""
    for index, spec in enumerate(dataset.features):
        if spec.name == MODEL_OUTPUT_FEATURE:
            return index
    return -1
