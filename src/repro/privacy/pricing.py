"""Disclosure pricing against a cumulative privacy budget.

The ledger (:mod:`repro.privacy.ledger`) stores *what* each client has
seen; this module computes *what it costs*. Risk composes non-linearly
-- two individually cheap features can be jointly expensive -- so a
client's cumulative spend is always the priced risk of their full
disclosed set, never a sum of per-feature prices. Re-disclosing a
feature therefore costs exactly zero by construction: ``risk(D | D)``
changes nothing.

Two pieces:

* :class:`DisclosurePricer` wraps the paper's
  :class:`~repro.privacy.incremental.IncrementalRiskEvaluator` with a
  set-oriented interface (sync-to-set, price-a-set, and a greedy
  :meth:`~DisclosurePricer.plan` that shrinks a requested disclosure
  set to fit the client's remaining budget -- the degradation ladder's
  middle rung).
* ``risk_model_to_dict`` / ``risk_model_from_dict`` serialize the
  fitted pricing state (the naive-Bayes adversary's smoothed tables, an
  evaluation-row sample, metric and column roles) into a deployment
  bundle, so a serving host can price disclosures without ever holding
  the training pipeline.

The serving glue (identity, ledger transaction, telemetry) lives in
:mod:`repro.serving.budget`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.privacy.adversary import NaiveBayesAdversary
from repro.privacy.incremental import IncrementalRiskEvaluator
from repro.privacy.risk import RiskError, RiskMetric

#: Version tag of the serialized risk-model payload embedded in
#: deployment bundles (independent of the bundle FORMAT_VERSION).
RISK_MODEL_VERSION = 1


@dataclass(frozen=True)
class PricingPlan:
    """Outcome of fitting a requested disclosure set to a budget.

    ``granted`` is the subset of the request the budget admits (in
    ascending feature order), ``dropped`` what had to be withheld;
    ``spent_before``/``spent_after`` are the client's cumulative
    realized risk around the charge, so ``delta`` is the marginal cost
    of this request. ``spent_after <= budget`` always holds.
    """

    granted: Tuple[int, ...]
    dropped: Tuple[int, ...]
    spent_before: float
    spent_after: float

    @property
    def delta(self) -> float:
        return max(0.0, self.spent_after - self.spent_before)


class DisclosurePricer:
    """Set-oriented pricing facade over the incremental evaluator.

    Holds one :class:`IncrementalRiskEvaluator` and keeps its stack
    synchronised to whichever client's cumulative set is being priced.
    Not thread-safe on its own -- the serving enforcer serialises
    pricing + ledger writes under one lock.
    """

    def __init__(self, evaluator: IncrementalRiskEvaluator) -> None:
        self.evaluator = evaluator
        self._risk = evaluator.as_risk_function()

    @property
    def n_features(self) -> int:
        return int(self.evaluator.rows.shape[1])

    def price(self, disclosure_set: Iterable[int]) -> float:
        """Normalized cumulative risk of ``disclosure_set`` (syncs the
        evaluator's stack to the set via minimal pops/pushes)."""
        return float(self._risk(list(disclosure_set)))

    def plan(
        self,
        base: Iterable[int],
        requested: Sequence[int],
        budget: float,
    ) -> PricingPlan:
        """Fit ``requested`` on top of the client's ``base`` history.

        Features already in ``base`` are granted for free (the
        no-double-charge rule). New features are admitted greedily by
        ascending marginal risk while the cumulative risk of
        ``base + admitted`` stays within ``budget`` -- greedy on the
        same peek-risk primitive the paper's disclosure optimizer uses,
        so a partially depleted client gets the cheapest viable subset
        of what they asked for rather than all-or-nothing.
        """
        history: Set[int] = {int(f) for f in base}
        request = [int(f) for f in requested]
        free = sorted(f for f in set(request) if f in history)
        fresh = sorted(set(request) - history)
        background = set(self.evaluator.background_columns)

        spent_before = self.price(history)
        granted: List[int] = list(free)
        dropped: List[int] = []
        spent_after = spent_before

        # Evaluator stack now mirrors `history` (minus background
        # columns, which are free anyway). Admit candidates cheapest-
        # marginal-first; each accepted push updates the cached state so
        # later peeks price against the grown set.
        remaining = set(fresh)
        while remaining:
            best_feature = min(remaining)
            best_risk = self.evaluator.peek_risk(best_feature)
            for feature in sorted(remaining - {best_feature}):
                trial = self.evaluator.peek_risk(feature)
                if trial < best_risk:
                    best_feature, best_risk = feature, trial
            remaining.discard(best_feature)
            if best_risk <= budget + 1e-12:
                if best_feature not in background:
                    self.evaluator.push(best_feature)
                granted.append(best_feature)
                spent_after = max(spent_after, min(float(best_risk), budget))
            else:
                dropped.append(best_feature)

        return PricingPlan(
            granted=tuple(sorted(granted)),
            dropped=tuple(sorted(dropped)),
            spent_before=float(spent_before),
            spent_after=float(spent_after),
        )


# -- risk-model serialization (deployment bundle section) ----------------


def risk_model_to_dict(evaluator: IncrementalRiskEvaluator) -> Dict:
    """Serialize the pricing state for a deployment bundle.

    Captures the fitted naive-Bayes adversary (smoothed prior and
    per-feature conditional tables -- aggregate statistics, not raw
    training records), the evaluation-row sample risk is averaged over,
    and the metric/column-role configuration. JSON-compatible: every
    array becomes nested lists.
    """
    adversary = evaluator.adversary
    if not isinstance(adversary, NaiveBayesAdversary):
        raise RiskError(
            "only the naive-Bayes adversary can be serialized for "
            "serving-side pricing"
        )
    return {
        "version": RISK_MODEL_VERSION,
        "metric": evaluator.metric.value,
        "sensitive_columns": [int(c) for c in evaluator.sensitive_columns],
        "background_columns": [
            int(c) for c in evaluator.background_columns
        ],
        "evaluation_rows": np.asarray(evaluator.rows).astype(int).tolist(),
        "adversary": {
            "kind": "naive_bayes",
            "alpha": float(adversary.alpha),
            "n_columns": int(np.asarray(adversary.data).shape[1]),
            "domain_sizes": [int(d) for d in adversary.domain_sizes],
            "priors": {
                str(t): [float(p) for p in adversary._priors[t]]
                for t in adversary.sensitive_columns
            },
            "conditionals": {
                str(t): {
                    str(f): np.asarray(table).tolist()
                    for f, table in tables.items()
                }
                for t, tables in adversary._conditionals.items()
            },
        },
    }


def risk_model_from_dict(payload: Dict) -> IncrementalRiskEvaluator:
    """Rebuild the pricing evaluator from a serialized payload.

    The adversary is reconstructed directly from its smoothed tables
    (bypassing the fitting constructor -- there is no training data on
    the serving host), then wrapped in a fresh incremental evaluator
    over the bundled evaluation rows. Round-trips exactly:
    ``rebuild.risk_of_set(S) == original.risk_of_set(S)`` for every S.
    """
    version = int(payload.get("version", 0))
    if version != RISK_MODEL_VERSION:
        raise RiskError(
            f"unsupported risk-model payload version {version} "
            f"(expected {RISK_MODEL_VERSION})"
        )
    spec = payload["adversary"]
    if spec.get("kind") != "naive_bayes":
        raise RiskError(f"unsupported adversary kind {spec.get('kind')!r}")

    adversary = NaiveBayesAdversary.__new__(NaiveBayesAdversary)
    adversary.data = np.zeros((0, int(spec["n_columns"])), dtype=int)
    adversary.domain_sizes = [int(d) for d in spec["domain_sizes"]]
    adversary.sensitive_columns = [
        int(c) for c in payload["sensitive_columns"]
    ]
    adversary.alpha = float(spec["alpha"])
    adversary._priors = {
        int(t): np.asarray(prior, dtype=float)
        for t, prior in spec["priors"].items()
    }
    adversary._conditionals = {
        int(t): {
            int(f): np.asarray(table, dtype=float)
            for f, table in tables.items()
        }
        for t, tables in spec["conditionals"].items()
    }
    adversary._log_conditionals = {
        t: {f: np.log(table) for f, table in tables.items()}
        for t, tables in adversary._conditionals.items()
    }

    return IncrementalRiskEvaluator(
        adversary=adversary,
        evaluation_rows=np.asarray(payload["evaluation_rows"], dtype=int),
        sensitive_columns=[int(c) for c in payload["sensitive_columns"]],
        metric=RiskMetric(payload["metric"]),
        background_columns=[
            int(c) for c in payload.get("background_columns", [])
        ],
    )
