"""Chow-Liu tree-structured Bayesian networks with exact inference.

For datasets with many features the dense joint is intractable, but the
classic Chow-Liu construction -- the maximum spanning tree of the
pairwise mutual-information graph -- is the KL-optimal tree-structured
approximation and supports *exact* posterior inference in
``O(d * k^2)`` per query via message passing.

The privacy adversary uses this model when the feature count exceeds
what :class:`~repro.privacy.distribution.EmpiricalJoint` can hold, and
the optimizer-scalability benchmarks (E8) rely on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.privacy.distribution import (
    DistributionError,
    pairwise_mutual_information,
)


class BayesNetError(Exception):
    """Raised on invalid tree construction or inference queries."""


class ChowLiuTree:
    """A tree-structured Bayesian network learned by Chow-Liu.

    Attributes
    ----------
    domain_sizes:
        Domain size per column (column ids are positions ``0..d-1``).
    edges:
        Undirected tree edges as ``(u, v)`` pairs.
    """

    def __init__(
        self,
        domain_sizes: Sequence[int],
        edge_factors: Dict[Tuple[int, int], np.ndarray],
        node_priors: Dict[int, np.ndarray],
    ) -> None:
        self.domain_sizes = list(domain_sizes)
        self._edge_factors = dict(edge_factors)
        self._node_priors = dict(node_priors)
        self._adjacency: Dict[int, List[int]] = {
            node: [] for node in range(len(domain_sizes))
        }
        for u, v in edge_factors:
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """Undirected tree edges."""
        return list(self._edge_factors)

    @staticmethod
    def fit(
        data: np.ndarray, domain_sizes: Sequence[int], alpha: float = 0.5
    ) -> "ChowLiuTree":
        """Learn structure (max-MI spanning tree) and parameters.

        Parameters
        ----------
        data:
            Integer-coded matrix, one column per variable.
        domain_sizes:
            Domain size per column.
        alpha:
            Laplace smoothing pseudo-count for the pairwise tables.
        """
        data = np.asarray(data)
        d = data.shape[1]
        if d != len(domain_sizes):
            raise BayesNetError(
                f"{d} data columns vs {len(domain_sizes)} domain sizes"
            )
        if d == 0:
            raise BayesNetError("cannot fit a tree over zero variables")

        node_priors = {
            node: _smoothed_marginal(data[:, node], domain_sizes[node], alpha)
            for node in range(d)
        }
        if d == 1:
            return ChowLiuTree(domain_sizes, {}, node_priors)

        mi = pairwise_mutual_information(data, domain_sizes, alpha=alpha)
        graph = nx.Graph()
        graph.add_nodes_from(range(d))
        for a in range(d):
            for b in range(a + 1, d):
                graph.add_edge(a, b, weight=mi[a, b])
        tree = nx.maximum_spanning_tree(graph, weight="weight")

        edge_factors: Dict[Tuple[int, int], np.ndarray] = {}
        for u, v in tree.edges:
            u, v = (u, v) if u < v else (v, u)
            joint = _smoothed_pairwise(
                data[:, u], data[:, v], domain_sizes[u], domain_sizes[v], alpha
            )
            edge_factors[(u, v)] = joint
        return ChowLiuTree(domain_sizes, edge_factors, node_priors)

    def _edge_potential(self, u: int, v: int) -> np.ndarray:
        """Conditional-style potential ``psi(x_u, x_v)`` oriented (u, v).

        The tree factorisation ``P(x) = prod_v P(x_v) * prod_edges
        P(x_u, x_v) / (P(x_u) P(x_v))`` is symmetric; we fold one
        marginal into each edge so the product of node priors times
        edge potentials is the joint: ``psi(u, v) = P(u, v) / P(u) / P(v)``.
        """
        key = (u, v) if u < v else (v, u)
        if key not in self._edge_factors:
            raise BayesNetError(f"no edge between {u} and {v}")
        joint = self._edge_factors[key]
        pu = self._node_priors[key[0]][:, None]
        pv = self._node_priors[key[1]][None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            potential = np.where(joint > 0, joint / (pu * pv), 0.0)
        if key != (u, v):
            potential = potential.T
        return potential

    def posterior(
        self, target: int, evidence: Optional[Dict[int, int]] = None
    ) -> np.ndarray:
        """Exact posterior ``P(x_target | evidence)`` via message passing.

        Parameters
        ----------
        target:
            Column whose distribution is requested.
        evidence:
            ``{column: value}`` observations (may be empty).
        """
        evidence = evidence or {}
        self._validate_query(target, evidence)
        belief = self._collect(target, parent=None, evidence=evidence)
        total = belief.sum()
        if total <= 0:
            raise BayesNetError(
                f"evidence {evidence} has zero probability under the tree"
            )
        return belief / total

    def log_likelihood(self, data: np.ndarray) -> float:
        """Mean log-likelihood (base e) of rows under the tree model."""
        data = np.asarray(data)
        total = 0.0
        for row in data:
            probability = 1.0
            for node, prior in self._node_priors.items():
                probability *= prior[row[node]]
            for (u, v), joint in self._edge_factors.items():
                pu = self._node_priors[u][row[u]]
                pv = self._node_priors[v][row[v]]
                probability *= joint[row[u], row[v]] / (pu * pv)
            total += np.log(max(probability, 1e-300))
        return total / len(data)

    def _collect(
        self, node: int, parent: Optional[int], evidence: Dict[int, int]
    ) -> np.ndarray:
        """Upward message pass: belief over ``node`` from its subtree."""
        belief = self._node_priors[node].copy()
        if node in evidence:
            mask = np.zeros_like(belief)
            mask[evidence[node]] = 1.0
            belief = belief * mask
        for neighbour in self._adjacency[node]:
            if neighbour == parent:
                continue
            child_belief = self._collect(neighbour, node, evidence)
            potential = self._edge_potential(node, neighbour)
            belief = belief * (potential @ child_belief)
        return belief

    def _validate_query(self, target: int, evidence: Dict[int, int]) -> None:
        d = len(self.domain_sizes)
        if not 0 <= target < d:
            raise BayesNetError(f"target {target} outside 0..{d - 1}")
        for column, value in evidence.items():
            if not 0 <= column < d:
                raise BayesNetError(f"evidence column {column} outside 0..{d - 1}")
            if column == target:
                raise BayesNetError("target cannot also be evidence")
            if not 0 <= value < self.domain_sizes[column]:
                raise BayesNetError(
                    f"evidence value {value} outside domain of column {column}"
                )


def _smoothed_marginal(column: np.ndarray, domain: int, alpha: float) -> np.ndarray:
    counts = np.full(domain, alpha, dtype=float)
    np.add.at(counts, column, 1.0)
    return counts / counts.sum()


def _smoothed_pairwise(
    col_a: np.ndarray, col_b: np.ndarray, dom_a: int, dom_b: int, alpha: float
) -> np.ndarray:
    counts = np.full((dom_a, dom_b), alpha, dtype=float)
    np.add.at(counts, (col_a, col_b), 1.0)
    return counts / counts.sum()
