"""Privacy-risk metrics over disclosure sets.

The risk of disclosing feature set ``S`` is measured against the
cohort: for each record, the adversary sees that record's values of
``S`` and forms posteriors over the sensitive attributes; risk
aggregates how much better those posteriors are than the priors.

Three metrics (ablated in experiment E10):

* ``MAX_POSTERIOR`` (default) -- expected adversary confidence
  ``E_x[max_v P(t = v | x_S)]``, normalised as a loss in ``[0, 1]``:
  ``(confidence(S) - confidence(empty)) / (1 - confidence(empty))``.
  0 means disclosure taught the adversary nothing; 1 means certain
  identification.
* ``ENTROPY`` -- normalised mutual information
  ``(H(t) - E_x[H(t | x_S)]) / H(t)``.
* ``INFERENCE_ACCURACY`` -- empirical top-1 accuracy gain of the
  adversary's MAP guess against the record's true sensitive value.

Multiple sensitive attributes are averaged (each normalised first), so
datasets with different numbers of sensitive attributes are comparable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.privacy.adversary import BayesianAdversary, NaiveBayesAdversary


class RiskError(Exception):
    """Raised on invalid risk queries (sensitive feature in S, etc.)."""


class RiskMetric(enum.Enum):
    """Which aggregate measures the adversary's gain.

    Disclosing a feature set lets a Bayesian adversary update its
    posterior over each hidden sensitive feature; a risk metric folds
    those per-row posteriors into the single ``[0, 1]`` number the
    disclosure optimizer budgets against. ``MAX_POSTERIOR`` averages
    the adversary's top-posterior confidence (the paper's default),
    ``ENTROPY`` measures normalised posterior entropy *reduction*, and
    ``INFERENCE_ACCURACY`` scores the adversary's actual hit rate when
    it guesses the mode.

    Example::

        config = PipelineConfig(risk_metric=RiskMetric.ENTROPY)
    """

    MAX_POSTERIOR = "max_posterior"
    ENTROPY = "entropy"
    INFERENCE_ACCURACY = "inference_accuracy"


def max_posterior_confidence(posteriors: np.ndarray) -> float:
    """Mean of row-wise maximum posterior probabilities."""
    return float(posteriors.max(axis=1).mean())


def entropy_loss_risk(posteriors: np.ndarray) -> float:
    """Mean posterior Shannon entropy (bits) across rows."""
    clipped = np.clip(posteriors, 1e-12, 1.0)
    return float(-(clipped * np.log2(clipped)).sum(axis=1).mean())


def inference_accuracy_risk(posteriors: np.ndarray, truths: np.ndarray) -> float:
    """Top-1 accuracy of the adversary's MAP guesses."""
    guesses = posteriors.argmax(axis=1)
    return float((guesses == truths).mean())


@dataclass
class RiskModel:
    """Prices disclosure sets against a cohort.

    Parameters
    ----------
    adversary:
        The Bayesian adversary instance (its training data defines the
        population model).
    evaluation_rows:
        Records over which risk is averaged; typically a held-out
        sample of the cohort. Shape ``(m, d)``.
    sensitive_columns:
        Columns the adversary targets.
    metric:
        Aggregation metric (see :class:`RiskMetric`).
    """

    adversary: BayesianAdversary
    evaluation_rows: np.ndarray
    sensitive_columns: Sequence[int]
    metric: RiskMetric = RiskMetric.MAX_POSTERIOR
    background_columns: Sequence[int] = ()
    _baseline: Dict[int, float] = field(default_factory=dict, repr=False)
    _cache: Dict[FrozenSet[int], float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.evaluation_rows = np.asarray(self.evaluation_rows)
        self.sensitive_columns = list(self.sensitive_columns)
        self.background_columns = tuple(sorted(set(self.background_columns)))
        if self.evaluation_rows.ndim != 2:
            raise RiskError(
                f"evaluation rows must be 2-d, got {self.evaluation_rows.shape}"
            )
        if not self.sensitive_columns:
            raise RiskError("at least one sensitive column is required")
        if set(self.background_columns) & set(self.sensitive_columns):
            raise RiskError("sensitive columns cannot be background knowledge")
        for t in self.sensitive_columns:
            self._baseline[t] = self._confidence(t, self.background_columns)

    # -- public API -----------------------------------------------------

    def risk(self, disclosure_set: Iterable[int]) -> float:
        """Normalised privacy loss of disclosing ``disclosure_set``.

        The adversary's baseline already conditions on
        ``background_columns`` (publicly known attributes), so
        disclosing a background column is free and risk measures only
        the *new* information handed over.
        """
        columns = self._validated(disclosure_set)
        columns = tuple(sorted(set(columns) | set(self.background_columns)))
        key = frozenset(columns)
        if key not in self._cache:
            losses = [
                self._normalised_gain(t, columns) for t in self.sensitive_columns
            ]
            self._cache[key] = float(np.mean(losses))
        return self._cache[key]

    def confidence(self, sensitive_column: int, disclosure_set: Iterable[int]) -> float:
        """Raw (unnormalised) adversary score for one sensitive column."""
        return self._confidence(sensitive_column, self._validated(disclosure_set))

    def baseline(self, sensitive_column: int) -> float:
        """Adversary score with nothing disclosed (the prior)."""
        return self._baseline[sensitive_column]

    # -- internals --------------------------------------------------------

    def _validated(self, disclosure_set: Iterable[int]) -> Tuple[int, ...]:
        columns = tuple(sorted(set(disclosure_set)))
        d = self.evaluation_rows.shape[1]
        for column in columns:
            if not 0 <= column < d:
                raise RiskError(f"column {column} outside 0..{d - 1}")
        return columns

    def _posteriors(
        self, sensitive_column: int, columns: Tuple[int, ...]
    ) -> np.ndarray:
        """Posterior matrix ``(m, dom_t)`` for every evaluation row.

        A directly disclosed sensitive attribute yields per-row point
        masses on its true values -- maximal loss for that attribute.
        """
        rows = self.evaluation_rows
        if sensitive_column in columns:
            domain = len(self.adversary.prior(sensitive_column))
            posteriors = np.zeros((len(rows), domain))
            posteriors[np.arange(len(rows)), rows[:, sensitive_column]] = 1.0
            return posteriors
        if isinstance(self.adversary, NaiveBayesAdversary):
            return _batched_naive_posteriors(
                self.adversary, sensitive_column, columns, rows
            )
        out = []
        for row in rows:
            evidence = {c: int(row[c]) for c in columns}
            out.append(self.adversary.posterior(sensitive_column, evidence))
        return np.array(out)

    def _confidence(self, sensitive_column: int, columns: Tuple[int, ...]) -> float:
        posteriors = self._posteriors(sensitive_column, columns)
        if self.metric is RiskMetric.MAX_POSTERIOR:
            return max_posterior_confidence(posteriors)
        if self.metric is RiskMetric.ENTROPY:
            # Higher confidence = lower entropy; return negated entropy so
            # 'gain' is increase in confidence for all metrics.
            return -entropy_loss_risk(posteriors)
        truths = self.evaluation_rows[:, sensitive_column]
        return inference_accuracy_risk(posteriors, truths)

    def _normalised_gain(self, sensitive_column: int, columns: Tuple[int, ...]) -> float:
        baseline = self._baseline[sensitive_column]
        achieved = self._confidence(sensitive_column, columns)
        ceiling = self._ceiling(sensitive_column)
        if ceiling - baseline <= 1e-12:
            return 0.0
        return float(np.clip((achieved - baseline) / (ceiling - baseline), 0.0, 1.0))

    def _ceiling(self, sensitive_column: int) -> float:
        """Best-possible adversary score (full identification)."""
        if self.metric is RiskMetric.ENTROPY:
            return 0.0  # negated entropy of a point mass
        return 1.0


def _batched_naive_posteriors(
    adversary: NaiveBayesAdversary,
    sensitive_column: int,
    columns: Tuple[int, ...],
    rows: np.ndarray,
) -> np.ndarray:
    """Vectorised posterior computation for the naive-Bayes adversary.

    One matrix operation per disclosed column instead of one Python loop
    per row; this is the workhorse behind the optimizer's thousands of
    risk evaluations.
    """
    prior = adversary.prior(sensitive_column)
    log_beliefs = np.tile(np.log(prior), (len(rows), 1))
    for column in columns:
        table = adversary.likelihood_column(sensitive_column, column)
        log_beliefs += np.log(table[:, rows[:, column]]).T
    log_beliefs -= log_beliefs.max(axis=1, keepdims=True)
    beliefs = np.exp(log_beliefs)
    return beliefs / beliefs.sum(axis=1, keepdims=True)
