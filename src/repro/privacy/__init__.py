"""Privacy-risk machinery: the adversary model and risk metrics.

The paper's threat model: after the client discloses the feature values
in a set ``S``, a Bayesian adversary with knowledge of the population
joint distribution updates its belief about the *sensitive* attributes
(e.g. SNP genotypes). The privacy loss of ``S`` is how much that belief
improves over the prior.

This package provides:

* :mod:`repro.privacy.distribution` -- exact empirical joint
  distributions over small column subsets (with Laplace smoothing).
* :mod:`repro.privacy.bayesnet` -- Chow-Liu tree-structured Bayesian
  networks with exact message-passing inference, the tractable joint
  model for high-dimensional datasets.
* :mod:`repro.privacy.adversary` -- three adversary instantiations:
  conditionally-independent (naive-Bayes-style, supports the fast
  incremental risk computation), exact-joint (reference), and
  Chow-Liu-tree.
* :mod:`repro.privacy.risk` -- risk metrics: expected max-posterior
  confidence gain (the default), mutual-information / entropy loss, and
  empirical inference accuracy.
* :mod:`repro.privacy.incremental` -- the paper's "quickly compute the
  loss in privacy" mechanism: cached per-row belief states that make
  the marginal risk of adding one feature O(n * |dom(sensitive)|).
"""

from repro.privacy.adversary import (
    BayesianAdversary,
    ChowLiuAdversary,
    ExactJointAdversary,
    NaiveBayesAdversary,
)
from repro.privacy.bayesnet import ChowLiuTree
from repro.privacy.distribution import EmpiricalJoint
from repro.privacy.incremental import IncrementalRiskEvaluator
from repro.privacy.inversion import (
    InversionReport,
    ModelInversionAttack,
    augment_with_model_output,
)
from repro.privacy.randomized_response import (
    NoisyDisclosureAdversary,
    accuracy_under_noise,
    epsilon_of_channel,
    randomized_response_channel,
)
from repro.privacy.risk import (
    RiskMetric,
    RiskModel,
    entropy_loss_risk,
    inference_accuracy_risk,
    max_posterior_confidence,
)

__all__ = [
    "BayesianAdversary",
    "ChowLiuAdversary",
    "ChowLiuTree",
    "EmpiricalJoint",
    "ExactJointAdversary",
    "IncrementalRiskEvaluator",
    "InversionReport",
    "ModelInversionAttack",
    "NaiveBayesAdversary",
    "NoisyDisclosureAdversary",
    "accuracy_under_noise",
    "augment_with_model_output",
    "epsilon_of_channel",
    "randomized_response_channel",
    "RiskMetric",
    "RiskModel",
    "entropy_loss_risk",
    "inference_accuracy_risk",
    "max_posterior_confidence",
]
