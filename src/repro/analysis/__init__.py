"""Repo-specific static analysis: crypto/protocol invariant linting.

The protocols in this library are only as private as the code that
moves the bytes. This package turns the reviewer folklore of SMC
implementations -- "never let a decrypted value touch the channel
unencrypted", "every wire tag needs a decoder", "Paillier nonces never
come from a Mersenne Twister" -- into AST-level checkers that run in CI
(``python -m repro lint``).

Public API
----------
:func:`run_checks`
    Lint a set of files/directories; returns :class:`Finding` objects.
:data:`ALL_CHECKERS`
    The registered checker instances, one per rule.
:class:`Finding` / :class:`Severity`
    The finding record and its severity scale.
:mod:`repro.analysis.baseline`
    Committed-baseline handling so pre-existing findings do not block
    CI while new ones do.

Each rule can be locally suppressed with a pragma comment on the
flagged line (or the line above it)::

    risky_call()  # repro: allow[rule-id] -- one-line justification

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the threat
model behind each rule.
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import (
    Checker,
    ModuleInfo,
    iter_python_files,
    run_checks,
)
from repro.analysis.checkers import ALL_CHECKERS, checker_by_rule

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "ModuleInfo",
    "Severity",
    "checker_by_rule",
    "iter_python_files",
    "run_checks",
]
