"""Summary-based interprocedural taint analysis over the call graph.

This is the engine behind the ``channel-leak`` and ``branch-on-secret``
rules. It generalizes the original intra-function taint walk in two
directions:

* **labels instead of booleans** -- a value's taint is a set: the
  :data:`SECRET` label (derived from a ``*decrypt*`` call or
  private-key material) and/or parameter indices (derived from the
  enclosing function's *i*-th argument). Parameter labels are what make
  function summaries composable;
* **per-function summaries, computed to a fixpoint** -- for every
  project function the engine derives

  - ``return_labels`` / ``returns_elements``: which inputs (or SECRET)
    flow to the return value, element-wise when the function returns a
    literal tuple;
  - ``sends_param``: parameters that reach a channel send / transport
    write without passing through an ``*encrypt*`` / ``*encode*`` call,
    with the hop chain recorded for rendering;
  - ``sanitizer``: name-based (``encrypt``/``encode`` in the name), the
    same convention the intra-function rule always used.

  Summaries start empty (no flow) and only grow, so the worklist
  iteration -- re-analysing a function whenever one of its callees'
  summaries changed -- terminates at the least fixpoint.

A call that resolves (see :mod:`repro.analysis.callgraph`) is modelled
by its targets' summaries; a call that does not falls back to the
original conservative rule: any tainted argument taints the result.
With resolution disabled entirely (``interprocedural=False``) the engine
reproduces the historical intra-function ``channel-leak`` behaviour,
which the regression corpus in ``tests/analysis`` pins against the new
mode.

Control dependence is deliberately *not* a value flow: the taint of
``a if bit else b`` is the taint of ``a`` and ``b``, never of ``bit``.
Branching on a secret is a different bug class with its own advisory
rule (``branch-on-secret``), fed by the :class:`BranchEvent` stream this
engine emits alongside the leak events.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import call_name
from repro.analysis.callgraph import FunctionInfo, Program

#: Label for "derived from decrypt output / private-key material".
SECRET = -1

SOURCE_ATTRS = frozenset({"private_key", "secret_key"})
SINK_NAMES = frozenset(
    {"send", "client_sends", "server_sends", "send_frame", "sendall",
     "exchange"}
)
MUTATORS = frozenset({"append", "extend", "insert", "add", "update"})

Labels = Set[int]


def is_source_name(name: str) -> bool:
    return "decrypt" in name


def is_sanitizer_name(name: str) -> bool:
    return "encrypt" in name or "encode" in name


@dataclass
class LeakEvent:
    """SECRET reached a send -- directly or through callee summaries."""

    func: FunctionInfo
    line: int
    sink: str                     #: sink call name at this site
    chain: Tuple[str, ...]        #: qualnames, this function downward
    detail: str                   #: human chain rendering with lines


@dataclass
class BranchEvent:
    """Control flow conditioned on a SECRET-labelled value."""

    func: FunctionInfo
    line: int
    kind: str                     #: ``if`` / ``while`` / ``ternary`` ...


@dataclass
class Summary:
    """What one function does with taint, seen from its call sites."""

    sanitizer: bool = False
    return_labels: Labels = field(default_factory=set)
    returns_elements: Optional[List[Labels]] = None
    sends_param: Dict[int, Tuple[Tuple[str, ...], str]] = field(
        default_factory=dict
    )
    #: chain + detail for a SECRET return (which decrypt it came from).
    source_detail: str = ""

    def key(self) -> tuple:
        """Monotone-comparison key used to detect fixpoint convergence."""
        elements = (
            None if self.returns_elements is None
            else tuple(frozenset(e) for e in self.returns_elements)
        )
        return (
            frozenset(self.return_labels),
            elements,
            frozenset(self.sends_param),
        )


class ProgramTaint:
    """Engine instance: summaries plus per-module event extraction."""

    #: Hard cap on re-analyses of one function; real call chains
    #: converge in a handful of rounds, this bounds pathological SCCs.
    MAX_VISITS = 12

    def __init__(self, program: Program, interprocedural: bool = True):
        self.program = program
        self.interprocedural = interprocedural
        self.summaries: Dict[str, Summary] = {}
        for qualname, info in program.functions.items():
            self.summaries[qualname] = Summary(
                sanitizer=is_sanitizer_name(info.name)
            )
        self._computed = False

    def compute(self) -> "ProgramTaint":
        """Run the summary fixpoint (idempotent)."""
        if self._computed:
            return self
        from collections import deque

        visits: Dict[str, int] = {}
        worklist = deque(sorted(self.program.functions))
        queued = set(worklist)
        while worklist:
            qualname = worklist.popleft()
            queued.discard(qualname)
            if visits.get(qualname, 0) >= self.MAX_VISITS:
                continue
            visits[qualname] = visits.get(qualname, 0) + 1
            info = self.program.functions[qualname]
            before = self.summaries[qualname].key()
            walk = _FunctionTaint(self, info, collect_events=False)
            summary = walk.run()
            summary.sanitizer = self.summaries[qualname].sanitizer
            if summary.key() != before:
                self.summaries[qualname] = summary
                for caller in self.program.redges.get(qualname, ()):
                    if caller not in queued:
                        worklist.append(caller)
                        queued.add(caller)
        self._computed = True
        return self

    def events_for(
        self, module: str
    ) -> Tuple[List[LeakEvent], List[BranchEvent]]:
        """Leak and branch events for one module's functions (final
        pass with converged summaries)."""
        self.compute()
        leaks: List[LeakEvent] = []
        branches: List[BranchEvent] = []
        for info in self.program.functions.values():
            if info.module != module:
                continue
            walk = _FunctionTaint(self, info, collect_events=True)
            walk.run()
            leaks.extend(walk.leaks)
            branches.extend(walk.branches)
        leaks.sort(key=lambda e: e.line)
        branches.sort(key=lambda e: e.line)
        return leaks, branches


def engine_for(
    program: Program, interprocedural: bool = True
) -> ProgramTaint:
    """The (cached) taint engine for ``program``.

    Both taint-backed rules share one engine per program, so summaries
    are computed once per lint run no matter how many modules report.
    """
    key = ("taint", interprocedural)
    engine = program._taint_cache.get(key)
    if engine is None:
        engine = ProgramTaint(program, interprocedural).compute()
        program._taint_cache[key] = engine
    return engine


class _FunctionTaint:
    """Flow-sensitive label propagation over one function body."""

    def __init__(
        self, engine: ProgramTaint, info: FunctionInfo,
        collect_events: bool
    ) -> None:
        self.engine = engine
        self.info = info
        self.collect_events = collect_events
        self.labels: Dict[str, Labels] = {}
        for index, name in enumerate(info.params):
            if name in ("self", "cls"):
                continue
            self.labels[name] = {index}
        base = len(info.params)
        for offset, name in enumerate(info.kwonly):
            self.labels[name] = {base + offset}
        self.summary = Summary()
        self.leaks: List[LeakEvent] = []
        self.branches: List[BranchEvent] = []
        self._reported: Set[Tuple[int, str]] = set()
        self._return_stmts = 0
        #: line of the first local SECRET source, for chain details.
        self._source_line: Optional[int] = None

    # -- entry -----------------------------------------------------------

    def run(self) -> Summary:
        body = getattr(self.info.node, "body", [])
        # Two passes so loop-carried taint converges, exactly like the
        # original intra-function analysis.
        for _ in range(2):
            self.process_body(body)
        return self.summary

    # -- expression labels -----------------------------------------------

    def expr_labels(self, node: ast.AST) -> Labels:
        if isinstance(node, ast.Call):
            return self.call_labels(node)
        if isinstance(node, ast.Attribute):
            if node.attr in SOURCE_ATTRS:
                self._note_source(node.lineno)
                return {SECRET}
            return self.expr_labels(node.value)
        if isinstance(node, ast.Name):
            return set(self.labels.get(node.id, ()))
        if isinstance(node, ast.IfExp):
            # Control dependence is not a value flow: the chosen arm's
            # labels propagate, the condition's do not (the condition is
            # branch-on-secret territory).
            self.check_branch(node.test, "ternary")
            return self.expr_labels(node.body) | self.expr_labels(node.orelse)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension_labels(node)
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            return set()
        result: Labels = set()
        for child in ast.iter_child_nodes(node):
            result |= self.expr_labels(child)
        return result

    def _comprehension_labels(self, node: ast.AST) -> Labels:
        """A comprehension's labels are its *element expression's*
        labels with the loop targets bound to the iterables' labels --
        not the union of every child, so ``[encrypt(b) for b in bits]``
        stays clean no matter how secret ``bits`` is."""
        saved: Dict[str, Optional[Labels]] = {}
        for gen in node.generators:
            iter_labels = self.expr_labels(gen.iter)
            for name_node in ast.walk(gen.target):
                if isinstance(name_node, ast.Name):
                    name = name_node.id
                    if name not in saved:
                        saved[name] = self.labels.get(name)
                    if iter_labels:
                        self.labels[name] = set(iter_labels)
                    else:
                        self.labels.pop(name, None)
            for cond in gen.ifs:
                self.check_branch(cond, "comprehension filter")
                self.expr_labels(cond)
        if isinstance(node, ast.DictComp):
            result = self.expr_labels(node.key) | self.expr_labels(node.value)
        else:
            result = self.expr_labels(node.elt)
        for name, old in saved.items():
            if old is None:
                self.labels.pop(name, None)
            else:
                self.labels[name] = old
        return result

    def call_labels(self, call: ast.Call) -> Labels:
        name = call_name(call)
        arg_nodes = list(call.args) + [kw.value for kw in call.keywords]
        arg_labels = [self.expr_labels(arg) for arg in arg_nodes]
        # A method called on a tainted receiver returns tainted data
        # (``private_key.is_zero(c)`` reveals key-derived information
        # even though no argument is secret).
        recv_labels: Labels = (
            self.expr_labels(call.func.value)
            if isinstance(call.func, ast.Attribute) else set()
        )

        self._track_mutation(call, arg_labels)
        if name in SINK_NAMES:
            self._check_direct_sink(call, name, arg_nodes, arg_labels)
            return set().union(recv_labels, *arg_labels)
        if is_sanitizer_name(name):
            return set()
        if is_source_name(name):
            self._note_source(call.lineno)
            return {SECRET}

        targets = (
            self.engine.program.resolve_call(call, self.info)
            if self.engine.interprocedural else []
        )
        summaries = [
            self.engine.summaries[t] for t in targets
            if t in self.engine.summaries
        ]
        if not summaries:
            # Unknown callee: the historical conservative rule.
            return set().union(recv_labels, *arg_labels)

        result: Labels = set(recv_labels)
        for target, summary in zip(targets, summaries):
            if summary.sanitizer:
                continue
            result |= self._apply_summary(call, target, summary)
        return result

    def _apply_summary(
        self, call: ast.Call, target: str, summary: Summary
    ) -> Labels:
        """Model one resolved callee: map arguments through its summary
        (return flow + send-reaching parameters)."""
        info = self.engine.program.functions[target]
        # Labels of the expression bound to each callee parameter.
        bound: Dict[int, Tuple[Labels, ast.AST]] = {}
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            index = info.param_index(call, position)
            if index is not None:
                bound[index] = (self.expr_labels(arg), arg)
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            index = info.param_index_for_keyword(keyword.arg)
            if index is not None:
                bound[index] = (self.expr_labels(keyword.value),
                                keyword.value)

        result: Labels = set()
        for label in summary.return_labels:
            if label == SECRET:
                result.add(SECRET)
                self._note_source(call.lineno)
            elif label in bound:
                result |= bound[label][0]

        for index, (chain, detail) in summary.sends_param.items():
            if index not in bound:
                continue
            labels, _node = bound[index]
            if SECRET in labels:
                self._report_leak(
                    call.lineno,
                    sink=info.name,
                    chain=(self.info.qualname,) + chain,
                    detail=(
                        f"{self.info.qualname}:{call.lineno} passes it to "
                        f"{detail}"
                    ),
                )
            for label in labels - {SECRET}:
                self.summary.sends_param.setdefault(
                    label,
                    (
                        (self.info.qualname,) + chain,
                        f"{self.info.qualname}:{call.lineno} passes it to "
                        f"{detail}",
                    ),
                )
        return result

    def _track_mutation(
        self, call: ast.Call, arg_labels: Sequence[Labels]
    ) -> None:
        """``lst.append(tainted)`` and friends taint ``lst``."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATORS
            and isinstance(func.value, ast.Name)
            and arg_labels
        ):
            incoming = set().union(*arg_labels)
            if incoming:
                self.labels.setdefault(func.value.id, set()).update(incoming)

    def _check_direct_sink(
        self,
        call: ast.Call,
        name: str,
        arg_nodes: Sequence[ast.AST],
        arg_labels: Sequence[Labels],
    ) -> None:
        for labels in arg_labels:
            if SECRET in labels:
                self._report_leak(
                    call.lineno,
                    sink=name,
                    chain=(self.info.qualname,),
                    detail=f"{name}() at {self.info.qualname}:{call.lineno}",
                )
                break
        for labels in arg_labels:
            for label in labels - {SECRET}:
                self.summary.sends_param.setdefault(
                    label,
                    (
                        (self.info.qualname,),
                        f"{name}() at {self.info.qualname}:{call.lineno}",
                    ),
                )

    # -- events ----------------------------------------------------------

    def _note_source(self, line: int) -> None:
        if self._source_line is None:
            self._source_line = line

    def _report_leak(
        self, line: int, sink: str, chain: Tuple[str, ...], detail: str
    ) -> None:
        key = (line, "leak")
        if key in self._reported:
            return
        self._reported.add(key)
        if self.collect_events:
            self.leaks.append(
                LeakEvent(
                    func=self.info, line=line, sink=sink, chain=chain,
                    detail=detail,
                )
            )

    def check_branch(self, test: ast.AST, kind: str) -> None:
        labels = self.expr_labels(test)
        if SECRET not in labels:
            return
        line = getattr(test, "lineno", self.info.line)
        key = (line, "branch")
        if key in self._reported:
            return
        self._reported.add(key)
        if self.collect_events:
            self.branches.append(
                BranchEvent(func=self.info, line=line, kind=kind)
            )

    # -- statement walk --------------------------------------------------

    def process_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.process_stmt(stmt)

    def process_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are analysed as their own functions
        if isinstance(stmt, ast.Assign):
            labels = self.expr_labels(stmt.value)
            elements = self._element_labels(stmt.value)
            for target in stmt.targets:
                self.assign_target(target, labels, elements)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign_target(
                    stmt.target, self.expr_labels(stmt.value), None
                )
            return
        if isinstance(stmt, ast.AugAssign):
            labels = self.expr_labels(stmt.value)
            if labels:
                self.assign_target(stmt.target, labels, None, augment=True)
            else:
                self.expr_labels(stmt.target)
            return
        if isinstance(stmt, ast.Expr):
            self.expr_labels(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._record_return(stmt.value)
            return
        if isinstance(stmt, ast.For):
            labels = self.expr_labels(stmt.iter)
            self.assign_target(stmt.target, labels, None)
            self.process_body(stmt.body)
            self.process_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.check_branch(stmt.test, "while")
            self.expr_labels(stmt.test)
            self.process_body(stmt.body)
            self.process_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.check_branch(stmt.test, "if")
            self.expr_labels(stmt.test)
            self.process_body(stmt.body)
            self.process_body(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                labels = self.expr_labels(item.context_expr)
                if item.optional_vars is not None:
                    self.assign_target(item.optional_vars, labels, None)
            self.process_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.process_body(stmt.body)
            for handler in stmt.handlers:
                self.process_body(handler.body)
            self.process_body(stmt.orelse)
            self.process_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.Assert):
            self.check_branch(stmt.test, "assert")
        # Raise/Assert/Pass/Delete/Global/...: scan for calls/sinks.
        for child in ast.iter_child_nodes(stmt):
            self.expr_labels(child)

    def _element_labels(
        self, value: ast.AST
    ) -> Optional[List[Labels]]:
        """Per-element labels when ``value`` is a literal tuple/list or
        a call to a function summarized element-wise."""
        if isinstance(value, (ast.Tuple, ast.List)):
            return [self.expr_labels(element) for element in value.elts]
        if isinstance(value, ast.Call) and self.engine.interprocedural:
            targets = self.engine.program.resolve_call(value, self.info)
            if len(targets) == 1:
                summary = self.engine.summaries.get(targets[0])
                if summary is not None \
                        and summary.returns_elements is not None:
                    info = self.engine.program.functions[targets[0]]
                    mapped: List[Labels] = []
                    for element in summary.returns_elements:
                        labels: Labels = set()
                        for label in element:
                            if label == SECRET:
                                labels.add(SECRET)
                            else:
                                mapped_labels = self._bound_arg_labels(
                                    value, info, label
                                )
                                labels |= mapped_labels
                        mapped.append(labels)
                    return mapped
        return None

    def _bound_arg_labels(
        self, call: ast.Call, info: FunctionInfo, param: int
    ) -> Labels:
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if info.param_index(call, position) == param:
                return self.expr_labels(arg)
        for keyword in call.keywords:
            if keyword.arg is not None \
                    and info.param_index_for_keyword(keyword.arg) == param:
                return self.expr_labels(keyword.value)
        return set()

    def assign_target(
        self,
        target: ast.AST,
        labels: Labels,
        elements: Optional[List[Labels]],
        augment: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if augment:
                self.labels.setdefault(target.id, set()).update(labels)
            elif labels:
                self.labels[target.id] = set(labels)
            else:
                self.labels.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if elements is not None and len(elements) == len(target.elts) \
                    and not any(
                        isinstance(e, ast.Starred) for e in target.elts
                    ):
                for element, element_labels in zip(target.elts, elements):
                    self.assign_target(element, element_labels, None)
            else:
                for element in target.elts:
                    self.assign_target(element, labels, None)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, labels, None)
        elif isinstance(target, (ast.Subscript, ast.Attribute)) and labels:
            # Writing a tainted value into a container/field taints the
            # whole container name (weak update).
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                self.labels.setdefault(base.id, set()).update(labels)

    def _record_return(self, value: ast.AST) -> None:
        labels = self.expr_labels(value)
        self.summary.return_labels |= labels
        self._return_stmts += 1
        if isinstance(value, ast.Tuple):
            elements = [self.expr_labels(element) for element in value.elts]
            current = self.summary.returns_elements
            if current is None and self._return_stmts == 1:
                self.summary.returns_elements = elements
            elif current is not None and len(current) == len(elements):
                for mine, theirs in zip(current, elements):
                    mine |= theirs
            else:
                self.summary.returns_elements = None
        else:
            self.summary.returns_elements = None
