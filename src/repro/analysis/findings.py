"""Finding records produced by the invariant linter."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are invariant violations that can leak private
    data or corrupt a protocol run; ``WARNING`` findings are hygiene
    problems that make such violations easy to introduce. Both fail the
    lint gate unless baselined or suppressed -- the severity is a
    reading aid, not a bypass.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        The rule identifier (e.g. ``channel-leak``), usable in a
        ``# repro: allow[rule]`` pragma.
    severity:
        :class:`Severity` of the rule.
    path:
        Path of the offending file as given to the linter.
    module:
        Dotted module name (stable across checkouts; used for
        fingerprints so baselines survive repository moves).
    line:
        1-based source line of the violation.
    message:
        Human-readable description of what is wrong and why it matters.
    snippet:
        The stripped source line, for fingerprinting and display.
    chain:
        For interprocedural findings, the qualified-name call chain
        from the flagged site to the sink (or from a thread entry point
        to the flagged write). Empty for purely local findings.
    """

    rule: str
    severity: Severity
    path: str
    module: str
    line: int
    message: str
    snippet: str = ""
    chain: Tuple[str, ...] = ()

    def fingerprint(self) -> str:
        """Location-tolerant identity of this finding.

        Derived from the module, rule and offending source text rather
        than the line number, so unrelated edits above a baselined
        finding do not resurrect it. Interprocedural findings also hash
        their call chain (qualnames, no line numbers): the same send
        reached through a different path is different debt.
        """
        basis = f"{self.module}::{self.rule}::{self.snippet}"
        if self.chain:
            basis += "::" + "->".join(self.chain)
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """One-line human-readable form (``path:line: [rule] message``)."""
        return (
            f"{self.path}:{self.line}: {self.severity.value} "
            f"[{self.rule}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "chain": list(self.chain),
            "fingerprint": self.fingerprint(),
        }


@dataclass
class FindingCollector:
    """Mutable accumulator checkers append into (keeps checker code terse)."""

    findings: list = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)
