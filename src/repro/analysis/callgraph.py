"""Project-wide call graph for the whole-program analysis phase.

:class:`Program` indexes every function and class of a parsed module
set, resolves call sites to their likely targets, and derives the three
facts the interprocedural checkers consume:

* **call edges** (and their reverse) between qualified function names,
  which `lock-discipline` walks to find code reachable from thread and
  executor entry points, and ``repro lint --graph`` dumps;
* **thread roots** -- functions handed to ``threading.Thread(target=...)``
  or an executor's ``submit``/``map``: the places where a second thread
  of control enters the program;
* **module dependencies** (and their reverse), which ``--changed`` mode
  uses to re-lint the reverse call-graph dependents of edited files.

Resolution is deliberately name-based and conservative. Python has no
static types to lean on, so a call ``obj.refill()`` resolves to *every*
project function named ``refill`` (capped -- a name with more than
:data:`MAX_CANDIDATES` homonyms resolves to nothing and the taint layer
falls back to its generic worst-case call handling). Three cases are
precise: bare names defined or imported in the same module,
``self.method(...)`` inside a class, and fully-dotted paths that start
at an imported module. The over-approximation errs toward *more*
reachability, which is the safe direction for a checker that asks "can
a thread get here".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import ModuleInfo, call_name, dotted_source

#: A bare method/function name carried by more than this many distinct
#: project functions resolves to nothing (the generic call fallback)
#: rather than fanning an edge out to every homonym.
MAX_CANDIDATES = 8

#: Callables that put a function on another thread of control.
_THREAD_SPAWNERS = frozenset({"Thread", "Timer"})
_EXECUTOR_METHODS = frozenset({"submit", "map"})


@dataclass
class FunctionInfo:
    """One function or method definition in the program."""

    qualname: str            #: ``module.Class.name`` / ``module.name``
    module: str
    name: str
    cls: Optional[str]       #: owning class qualname, if a method
    node: ast.AST
    path: str
    line: int
    params: List[str] = field(default_factory=list)
    kwonly: List[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.cls is not None and bool(self.params) \
            and self.params[0] in ("self", "cls")

    def param_index(self, call: ast.Call, arg_position: int) -> Optional[int]:
        """Map a call-site positional index onto this function's params.

        Accounts for the implicit ``self`` of bound-method calls
        (``obj.m(a)`` binds ``a`` to param 1). Returns ``None`` when the
        position falls outside the declared parameters (``*args``).
        """
        offset = 1 if (
            self.is_method and isinstance(call.func, ast.Attribute)
        ) else 0
        index = arg_position + offset
        return index if index < len(self.params) else None

    def param_index_for_keyword(self, keyword: str) -> Optional[int]:
        if keyword in self.params:
            return self.params.index(keyword)
        if keyword in self.kwonly:
            return len(self.params) + self.kwonly.index(keyword)
        return None


@dataclass
class ClassInfo:
    """One class definition and its directly-defined methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


def _function_params(node: ast.AST) -> Tuple[List[str], List[str]]:
    args = node.args
    positional = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    kwonly = [a.arg for a in args.kwonlyargs]
    return positional, kwonly


def _module_imports(tree: ast.Module) -> Dict[str, str]:
    """Alias -> dotted target for the module's top-level imports."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


class Program:
    """The whole-program index: functions, classes, calls, reachability.

    Build one with :meth:`Program.build` over every parsed module, then
    ask it questions; it is immutable after construction and cached by
    the framework for the duration of one lint run.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.by_name: Dict[str, List[str]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.redges: Dict[str, Set[str]] = {}
        self.thread_roots: Set[str] = set()
        self.module_edges: Dict[str, Set[str]] = {}
        self.module_redges: Dict[str, Set[str]] = {}
        self._taint_cache: dict = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, modules: Iterable[ModuleInfo]) -> "Program":
        program = cls()
        for mod in modules:
            program._index_module(mod)
        program._link()
        return program

    def _index_module(self, mod: ModuleInfo) -> None:
        self.modules[mod.module] = mod
        self.imports[mod.module] = _module_imports(mod.tree)
        self._index_body(mod, mod.tree.body, prefix=mod.module, cls=None)

    def _index_body(
        self,
        mod: ModuleInfo,
        body: Sequence[ast.stmt],
        prefix: str,
        cls: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                params, kwonly = _function_params(node)
                info = FunctionInfo(
                    qualname=qualname,
                    module=mod.module,
                    name=node.name,
                    cls=cls,
                    node=node,
                    path=mod.path,
                    line=node.lineno,
                    params=params,
                    kwonly=kwonly,
                )
                self.functions[qualname] = info
                self.by_name.setdefault(node.name, []).append(qualname)
                if cls is not None and cls in self.classes:
                    self.classes[cls].methods[node.name] = info
                # Nested defs index under their parent's qualname.
                self._index_body(mod, node.body, prefix=qualname, cls=cls)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                self.classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=mod.module,
                    name=node.name,
                    node=node,
                )
                self._index_body(mod, node.body, prefix=qualname,
                                 cls=qualname)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                # Conditionally-defined functions still belong to the
                # program (TYPE_CHECKING guards, capability probes).
                self._index_guarded(mod, node, prefix, cls)

    def _index_guarded(
        self, mod: ModuleInfo, node: ast.stmt, prefix: str,
        cls: Optional[str]
    ) -> None:
        for field_name in ("body", "orelse", "finalbody"):
            self._index_body(
                mod, getattr(node, field_name, []) or [], prefix, cls
            )
        for handler in getattr(node, "handlers", []) or []:
            self._index_body(mod, handler.body, prefix, cls)

    def _link(self) -> None:
        for info in self.functions.values():
            callees: Set[str] = set()
            for call in self._calls_in(info):
                for target in self.resolve_call(call, info):
                    callees.add(target)
                self._note_thread_root(call, info)
            self.edges[info.qualname] = callees
            for callee in callees:
                self.redges.setdefault(callee, set()).add(info.qualname)
                if self.functions[callee].module != info.module:
                    self.module_edges.setdefault(
                        info.module, set()
                    ).add(self.functions[callee].module)
        for mod, imports in self.imports.items():
            for target in imports.values():
                target_mod = self._module_of_dotted(target)
                if target_mod and target_mod != mod:
                    self.module_edges.setdefault(mod, set()).add(target_mod)
        for mod, deps in self.module_edges.items():
            for dep in deps:
                self.module_redges.setdefault(dep, set()).add(mod)

    def _module_of_dotted(self, dotted: str) -> Optional[str]:
        """The longest known module prefix of a dotted import target."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def _calls_in(self, info: FunctionInfo) -> Iterable[ast.Call]:
        """Call nodes in ``info``'s body, excluding nested defs (they
        are indexed as their own functions)."""
        stack = list(ast.iter_child_nodes(info.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- resolution ------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> List[str]:
        """Qualified names ``call`` may invoke, best-effort (see module
        docstring for the resolution rules). Empty means unknown."""
        return self.resolve_reference(call.func, caller)

    def resolve_reference(
        self, node: ast.AST, caller: FunctionInfo
    ) -> List[str]:
        """Resolve a function-valued expression (a call target or a
        ``target=self._worker`` style reference) to qualnames."""
        imports = self.imports.get(caller.module, {})
        if isinstance(node, ast.Name):
            local = f"{caller.module}.{node.id}"
            if local in self.functions:
                return [local]
            imported = imports.get(node.id)
            if imported and imported in self.functions:
                return [imported]
            return []
        if isinstance(node, ast.Attribute):
            # self.method() -> the enclosing class's method.
            if isinstance(node.value, ast.Name) \
                    and node.value.id in ("self", "cls") \
                    and caller.cls is not None:
                cls = self.classes.get(caller.cls)
                if cls is not None and node.attr in cls.methods:
                    return [cls.methods[node.attr].qualname]
            # Fully-dotted path rooted at an imported module/function.
            dotted = dotted_source(node)
            if dotted:
                head, _, rest = dotted.partition(".")
                expanded = imports.get(head)
                for candidate in (
                    dotted,
                    f"{expanded}.{rest}" if expanded and rest else None,
                    expanded if expanded and not rest else None,
                ):
                    if candidate and candidate in self.functions:
                        return [candidate]
            # Bare-name fallback: every project function with this name.
            candidates = self.by_name.get(node.attr, [])
            if 0 < len(candidates) <= MAX_CANDIDATES:
                return list(candidates)
        return []

    def _note_thread_root(
        self, call: ast.Call, caller: FunctionInfo
    ) -> None:
        """Record functions this call hands to another thread."""
        name = call_name(call)
        refs: List[ast.AST] = []
        if name in _THREAD_SPAWNERS:
            refs.extend(
                kw.value for kw in call.keywords if kw.arg == "target"
            )
        elif name in _EXECUTOR_METHODS and isinstance(
            call.func, ast.Attribute
        ) and call.args:
            refs.append(call.args[0])
        for ref in refs:
            for target in self.resolve_reference(ref, caller):
                self.thread_roots.add(target)

    # -- queries ---------------------------------------------------------

    def reachable_from_threads(self) -> Set[str]:
        """Functions reachable from any thread/executor entry point."""
        return self.reachable_from(self.thread_roots)

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def thread_path_to(self, qualname: str) -> List[str]:
        """A shortest entry-point -> ... -> ``qualname`` chain, for
        rendering lock-discipline findings (empty when unreachable)."""
        from collections import deque

        parents: Dict[str, Optional[str]] = {}
        queue = deque()
        for root in sorted(self.thread_roots):
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.popleft()
            if current == qualname:
                chain = [current]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])
                return list(reversed(chain))
            for callee in sorted(self.edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return []

    def dependent_modules(self, changed: Iterable[str]) -> Set[str]:
        """``changed`` plus every module that (transitively) calls or
        imports into one of them -- the ``--changed`` re-lint set."""
        result: Set[str] = set()
        stack = [mod for mod in changed if mod in self.modules]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self.module_redges.get(current, ()))
        return result

    def module_of_path(self) -> Dict[str, str]:
        """Resolved source path -> module name, for ``--changed``."""
        import os

        return {
            os.path.realpath(mod.path): name
            for name, mod in self.modules.items()
            if mod.path != "<memory>"
        }

    def to_dict(self) -> dict:
        """JSON document behind ``repro lint --graph``."""
        return {
            "functions": {
                qualname: {
                    "module": info.module,
                    "path": info.path,
                    "line": info.line,
                    "calls": sorted(self.edges.get(qualname, ())),
                }
                for qualname, info in sorted(self.functions.items())
            },
            "thread_roots": sorted(self.thread_roots),
            "module_dependencies": {
                mod: sorted(deps)
                for mod, deps in sorted(self.module_edges.items())
            },
        }
