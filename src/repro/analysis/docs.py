"""Documentation checkers: link integrity and CLI-flag drift.

Prose rots faster than code: a renamed file silently breaks a relative
link, and a CLI flag documented in an operator guide keeps being
recommended long after the flag is gone. Both failure modes are cheap
to detect mechanically, so this module makes them CI failures:

* :func:`check_links` walks every markdown link in the given files and
  verifies that repo-relative targets exist and that ``#anchors``
  resolve to a real heading (GitHub's slug rules) in the target file;
* :func:`check_cli_flag_drift` verifies that every ``--flag`` token
  mentioned in an operator guide is a real flag of the CLI commands
  that guide documents (:data:`DOC_COMMANDS` maps guide -> commands;
  ``docs/DEPLOYMENT.md`` and ``docs/PRIVACY.md`` check against both
  ``python -m repro serve --help`` and ``python -m repro budget
  --help``), so a guide cannot drift from the CLI it documents.

Run it the same way CI does::

    PYTHONPATH=src python -m repro.analysis.docs README.md docs

Exit code 0 means every link resolves and the deployment guide only
names flags the ``serve`` command actually accepts; 1 lists the
problems, one per line, as ``file:line: message``.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Markdown inline links: ``[text](target)``. Images (``![alt](src)``)
#: match too -- their targets must exist just the same.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a markdown heading.

    Lower-case, spaces to hyphens, everything except word characters
    and hyphens dropped (backticks, punctuation, ampersands...).
    """
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _markdown_lines_outside_fences(text: str) -> Iterable[Tuple[int, str]]:
    """(1-based line number, line) pairs, skipping fenced code blocks."""
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, line


def heading_slugs(path: str) -> Dict[str, int]:
    """Anchor slug -> first line number, for every heading in ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    slugs: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    for number, line in _markdown_lines_outside_fences(text):
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        # GitHub de-duplicates repeats as slug, slug-1, slug-2, ...
        slugs.setdefault(slug if seen == 0 else f"{slug}-{seen}", number)
    return slugs


def check_links(paths: Sequence[str], root: Optional[str] = None) -> List[str]:
    """Validate every markdown link in ``paths``; returns problems.

    ``root`` is the repository root used to resolve targets that start
    with ``/`` (defaults to the current working directory). Relative
    targets resolve against the linking file's directory, exactly as
    GitHub renders them. External URLs are skipped -- checking them
    needs a network and belongs elsewhere.
    """
    root = os.path.abspath(root or os.getcwd())
    problems: List[str] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        base = os.path.dirname(os.path.abspath(path))
        for number, line in _markdown_lines_outside_fences(text):
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL_SCHEMES):
                    continue
                problems.extend(
                    f"{path}:{number}: {message}"
                    for message in _check_one_target(target, base, root, path)
                )
    return problems


def _check_one_target(target: str, base: str, root: str,
                      source: str) -> List[str]:
    """Problems for a single non-external link target."""
    target, _, anchor = target.partition("#")
    if target:
        resolved = (os.path.join(root, target.lstrip("/"))
                    if target.startswith("/") else os.path.join(base, target))
        resolved = os.path.normpath(resolved)
        if not os.path.exists(resolved):
            return [f"broken link: {target!r} does not exist"]
        anchor_file = resolved
    else:
        anchor_file = os.path.abspath(source)
    if not anchor:
        return []
    if not anchor_file.endswith((".md", ".markdown")):
        return []  # anchors into non-markdown files are not ours to judge
    if anchor.lower() not in heading_slugs(anchor_file):
        where = "this file" if not target else repr(target)
        return [f"broken anchor: #{anchor} not a heading of {where}"]
    return []


#: Which CLI commands each operator guide documents: every ``--flag``
#: the guide mentions must belong to one of these commands' parsers.
DOC_COMMANDS = {
    "DEPLOYMENT.md": ("serve", "budget"),
    "PRIVACY.md": ("serve", "budget"),
}


def command_help_text(command: str) -> str:
    """A ``python -m repro <command> --help`` text, captured in-process."""
    from repro.cli import build_parser

    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices[command].format_help()
    raise RuntimeError("repro CLI has no subcommands")  # pragma: no cover


def serve_help_text() -> str:
    """The ``python -m repro serve --help`` text, captured in-process."""
    return command_help_text("serve")


def check_cli_flag_drift(
    doc_path: str,
    help_text: Optional[str] = None,
    commands: Sequence[str] = ("serve",),
) -> List[str]:
    """Every ``--flag`` token in ``doc_path`` must be a real CLI flag.

    An operator guide documents one or more ``python -m repro``
    commands (``commands``); a flag that none of them accepts any more
    (renamed, removed) is drift, reported as a problem. ``help_text``
    defaults to the live parsers' concatenated help so the check can
    never disagree with the shipping CLI.
    """
    if help_text is None:
        help_text = "\n".join(command_help_text(c) for c in commands)
    known = set(_FLAG_RE.findall(help_text))
    spelled = "|".join(commands)
    with open(doc_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    problems = []
    for number, line in enumerate(text.splitlines(), start=1):
        for flag in _FLAG_RE.findall(line):
            if flag not in known:
                problems.append(
                    f"{doc_path}:{number}: flag {flag} is not accepted by "
                    f"'python -m repro {spelled}' (drifted doc?)"
                )
    return problems


def _expand_markdown(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith((".md", ".markdown"))
            )
        else:
            files.append(path)
    return files


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: ``python -m repro.analysis.docs README.md docs``."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis.docs",
        description="markdown link checker + CLI-flag drift checker",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="markdown files or directories of *.md to check",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root for absolute (/-prefixed) links (default .)",
    )
    args = parser.parse_args(argv)

    files = _expand_markdown(args.paths)
    problems = check_links(files, root=args.root)
    for path in files:
        commands = DOC_COMMANDS.get(os.path.basename(path))
        if commands:
            problems.extend(check_cli_flag_drift(path, commands=commands))
    for problem in problems:
        print(problem)
    print(f"{len(problems)} problem(s) in {len(files)} file(s)",
          file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
