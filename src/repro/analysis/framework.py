"""Shared visitor framework for the invariant checkers.

A checker is a small class with a ``rule`` id and a ``check(module)``
method producing :class:`~repro.analysis.findings.Finding` objects.
This module owns everything checkers share: parsing files once into
:class:`ModuleInfo` records, mapping file paths to dotted module names,
the ``# repro: allow[rule-id]`` suppression pragma, and the
:func:`run_checks` driver the CLI and the test suite call.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import (
    Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple,
)

from repro.analysis.findings import Finding, Severity

#: Packages holding cryptographic or protocol code; the scoped rules
#: (RNG hygiene, channel leaks, exception hygiene, ...) apply here.
CRYPTO_SCOPE = ("repro.crypto", "repro.smc", "repro.circuits", "repro.secure")

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-*,\s]+)\]")


@dataclass
class ModuleInfo:
    """One parsed source module, shared by every checker.

    Attributes
    ----------
    path:
        The file path as given to the linter (used in reports).
    module:
        Dotted module name (``repro.smc.wire``); scoped checkers key off
        this, and tests can inject synthetic names for fixture files.
    source / lines:
        Raw text and its split lines (1-based access via
        :meth:`line_text`).
    tree:
        The parsed ``ast.Module``.
    allows:
        Per-line suppression pragmas: line number -> set of rule ids
        (``*`` suppresses every rule on that line).
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    allows: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, module: str, path: str = "<memory>"
    ) -> "ModuleInfo":
        """Parse ``source`` into a ready-to-check module record."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            lines=lines,
            allows=_parse_pragmas(lines),
        )

    @classmethod
    def from_path(
        cls, path: Path, module: Optional[str] = None
    ) -> "ModuleInfo":
        """Load and parse a file; the module name is derived from the
        path unless given explicitly."""
        source = path.read_text(encoding="utf-8")
        return cls.from_source(
            source, module or module_name_for(path), path=str(path)
        )

    def line_text(self, line: int) -> str:
        """The stripped text of 1-based ``line`` (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when a pragma on ``line`` or the line above allows ``rule``."""
        for candidate in (line, line - 1):
            allowed = self.allows.get(candidate)
            if allowed and (rule in allowed or "*" in allowed):
                return True
        return False

    def in_scope(self, packages: Sequence[str] = CRYPTO_SCOPE) -> bool:
        """True when this module lives inside one of ``packages``."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def functions(self) -> Iterator[ast.AST]:
        """Every function/method definition in the module, source order."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def _parse_pragmas(lines: List[str]) -> Dict[int, Set[str]]:
    allows: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _PRAGMA.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            allows[number] = {rule for rule in rules if rule}
    return allows


#: Files whose presence marks a directory as the repository root, for
#: :func:`repo_relative` path normalization.
_REPO_MARKERS = ("pyproject.toml", "setup.py", ".git")


@lru_cache(maxsize=512)
def _repo_root_for(directory: str) -> Optional[str]:
    """Nearest ancestor of ``directory`` (inclusive) that looks like a
    repository root, or ``None``."""
    current = Path(directory)
    for candidate in (current, *current.parents):
        if any((candidate / marker).exists() for marker in _REPO_MARKERS):
            return str(candidate)
    return None


def repo_relative(path: Path) -> Path:
    """``path`` relative to its repository root when one is found.

    This is what keeps module names -- and therefore baseline
    fingerprints -- identical between a local checkout and CI: an
    absolute path like ``/home/ci/build/tests/analysis/x.py`` and a
    relative ``tests/analysis/x.py`` both normalize to the same
    repo-relative form. Paths outside any repository pass through
    unchanged.
    """
    try:
        resolved = path.resolve()
    except OSError:  # pragma: no cover - unresolvable paths pass through
        return path
    root = _repo_root_for(str(resolved.parent))
    if root is not None:
        try:
            return resolved.relative_to(root)
        except ValueError:  # pragma: no cover - symlinked out of root
            return path
    return path


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``.

    The path is first normalized to be repository-relative (see
    :func:`repo_relative`), then the segments after the last ``src``
    component are used when one is present (``src/repro/smc/wire.py``
    -> ``repro.smc.wire``), so names are stable no matter which
    directory the linter is invoked from *and* which machine it runs
    on.
    """
    normalized = repo_relative(path)
    parts = list(normalized.with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    while parts and parts[0] in (".", "/", normalized.anchor):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule``, ``severity`` and ``description`` and
    implement :meth:`check`, yielding findings for one parsed module.

    Whole-program checkers additionally read :attr:`program`: the
    driver binds the :class:`~repro.analysis.callgraph.Program` built
    over every linted module before the check phase starts, so a
    checker sees the full call graph even though it is invoked one
    module at a time. Purely local checkers ignore it.
    """

    rule: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    #: The whole-program index, bound by the driver (phase one of the
    #: two-phase run). ``None`` means the checker runs standalone on a
    #: single module and should fall back to a solo program if needed.
    program = None

    def bind(self, program) -> None:
        """Attach the whole-program index for this lint run."""
        self.program = program

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, mod: ModuleInfo, node: ast.AST, message: str,
        chain: Sequence[str] = (),
    ) -> Finding:
        """Build a finding anchored at ``node``'s source line."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule,
            severity=self.severity,
            path=mod.path,
            module=mod.module,
            line=line,
            message=message,
            snippet=mod.line_text(line),
            chain=tuple(chain),
        )


def check_module(
    mod: ModuleInfo,
    checkers: Optional[Sequence[Checker]] = None,
    respect_pragmas: bool = True,
    program=None,
) -> List[Finding]:
    """Run ``checkers`` over one module, honouring suppression pragmas.

    When no pre-built ``program`` is supplied (standalone/test use),
    the module is indexed as a program of one so the whole-program
    checkers still run -- with intra-module resolution only.
    """
    from repro.analysis.checkers import ALL_CHECKERS
    from repro.analysis.callgraph import Program

    if program is None:
        program = Program.build([mod])
    results: List[Finding] = []
    for checker in checkers if checkers is not None else ALL_CHECKERS:
        checker.bind(program)
        for finding in checker.check(mod):
            if respect_pragmas and mod.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            results.append(finding)
    return results


def _parse_error_finding(path: Path, error: Exception) -> Finding:
    return Finding(
        rule="parse-error",
        severity=Severity.ERROR,
        path=str(path),
        module=module_name_for(path),
        line=getattr(error, "lineno", None) or 1,
        message=f"cannot parse file: {error}",
    )


def _parse_one(raw: str):
    """Process-pool worker: parse one file into a picklable result."""
    path = Path(raw)
    try:
        return ("ok", ModuleInfo.from_path(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as error:
        return ("err", _parse_error_finding(path, error))


#: Below this many files a process pool costs more than it saves.
_PARALLEL_THRESHOLD = 16


def parse_modules(
    paths: Iterable[str], jobs: Optional[int] = None
) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Phase one: parse every python file under ``paths``.

    Returns the parsed modules plus ``parse-error`` findings for
    unparseable files (a syntax error cannot silently shrink the lint
    surface). ``jobs`` > 1 fans parsing out over a process pool --
    parse results (AST included) are picklable -- falling back to
    serial parsing when the pool cannot start.
    """
    files = list(iter_python_files(paths))
    if jobs is None:
        import os

        jobs = os.cpu_count() or 1
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    if jobs > 1 and len(files) >= _PARALLEL_THRESHOLD:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(
                    pool.map(_parse_one, [str(f) for f in files],
                             chunksize=8)
                )
        except (OSError, ImportError, RuntimeError):
            outcomes = None  # pool unavailable (sandbox): parse serially
        if outcomes is not None:
            for path, outcome in zip(files, outcomes):
                if outcome[0] == "ok":
                    mod = outcome[1]
                    mod.path = str(path)  # keep the as-given path
                    modules.append(mod)
                else:
                    errors.append(outcome[1])
            return modules, errors
    for path in files:
        outcome = _parse_one(str(path))
        if outcome[0] == "ok":
            modules.append(outcome[1])
        else:
            errors.append(outcome[1])
    return modules, errors


def check_program(
    modules: Sequence[ModuleInfo],
    program,
    checkers: Optional[Sequence[Checker]] = None,
    respect_pragmas: bool = True,
    only_modules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Phase two: run the checkers over already-parsed modules.

    ``only_modules`` restricts which modules *report* findings (the
    ``--changed`` fast path); the program -- and therefore summaries
    and reachability -- always covers the full parsed set.
    """
    results: List[Finding] = []
    for mod in modules:
        if only_modules is not None and mod.module not in only_modules:
            continue
        results.extend(
            check_module(mod, checkers, respect_pragmas, program=program)
        )
    return results


def run_checks(
    paths: Iterable[str],
    checkers: Optional[Sequence[Checker]] = None,
    respect_pragmas: bool = True,
    jobs: int = 1,
) -> List[Finding]:
    """Lint every python file under ``paths``; the library entry point.

    Runs the two phases back to back: parse (optionally parallel) and
    build the whole-program index, then check each module against it.
    """
    from repro.analysis.callgraph import Program

    modules, results = parse_modules(paths, jobs=jobs)
    program = Program.build(modules)
    results = list(results)
    results.extend(
        check_program(modules, program, checkers, respect_pragmas)
    )
    results.sort(key=lambda f: (f.path, f.line, f.rule))
    return results


# -- small AST helpers shared by the checkers --------------------------------


def call_name(node: ast.AST) -> str:
    """The rightmost name of a call target (``ctx.channel.send`` -> ``send``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def dotted_source(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def walk_in_order(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first traversal yielding nodes in source order."""
    for child in ast.iter_child_nodes(node):
        yield child
        yield from walk_in_order(child)
