"""Committed-baseline handling for the invariant linter.

A baseline is a JSON file mapping finding fingerprints (see
:meth:`repro.analysis.findings.Finding.fingerprint`) to occurrence
counts. Findings covered by the baseline are *known debt*: they do not
fail CI, but any finding beyond the baselined count does. Fingerprints
hash the module, rule and offending source text -- not the line number
-- so edits elsewhere in a file neither hide nor resurrect baselined
findings.

The intended workflow:

1. ``python -m repro lint src --write-baseline`` freezes the current
   findings into ``.repro-lint-baseline.json``;
2. CI runs ``python -m repro lint src --baseline
   .repro-lint-baseline.json`` and fails on anything new;
3. debt is paid down by fixing findings and re-freezing -- the test
   suite pins the baseline to a fresh run, so a stale entry (a fixed
   finding still listed) is itself an error.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Conventional baseline path at the repository root.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


class BaselineError(Exception):
    """Raised on malformed baseline files."""


def fingerprint_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    """Multiset of finding fingerprints."""
    return dict(Counter(f.fingerprint() for f in findings))


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Freeze ``findings`` into a baseline file (sorted, diff-friendly)."""
    counts = fingerprint_counts(findings)
    entries = {}
    by_print: Dict[str, Finding] = {}
    for finding in findings:
        by_print.setdefault(finding.fingerprint(), finding)
    for print_, count in sorted(counts.items()):
        sample = by_print[print_]
        entries[print_] = {
            "count": count,
            "rule": sample.rule,
            "module": sample.module,
            "snippet": sample.snippet,
        }
        if sample.chain:
            entries[print_]["chain"] = list(sample.chain)
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline file into fingerprint -> allowed-count."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(f"baseline {path} has no 'findings' table")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported version {version!r}"
        )
    counts: Dict[str, int] = {}
    for print_, entry in payload["findings"].items():
        if isinstance(entry, dict):
            counts[print_] = int(entry.get("count", 1))
        else:
            counts[print_] = int(entry)
    return counts


def split_by_baseline(
    findings: List[Finding], allowed: Dict[str, int]
) -> Tuple[List[Finding], List[Finding], Dict[str, int]]:
    """Partition findings into (baselined, new) and report stale debt.

    Returns ``(known, fresh, stale)`` where ``stale`` maps fingerprints
    listed in the baseline but no longer produced (fully or partially)
    to the unused count -- paid-down debt that should be removed by
    re-freezing the baseline.
    """
    remaining = dict(allowed)
    known: List[Finding] = []
    fresh: List[Finding] = []
    for finding in findings:
        print_ = finding.fingerprint()
        if remaining.get(print_, 0) > 0:
            remaining[print_] -= 1
            known.append(finding)
        else:
            fresh.append(finding)
    stale = {print_: count for print_, count in remaining.items() if count > 0}
    return known, fresh, stale
