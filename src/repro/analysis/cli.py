"""``python -m repro lint``: the CLI face of the invariant linter.

Exit codes: 0 when every finding is baselined (or there are none),
1 when new findings exist or the baseline is stale (lists debt that no
longer reproduces -- re-freeze with ``--write-baseline``), 2 on usage
errors (missing baseline file, unknown rule).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import ALL_CHECKERS, run_checks
from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_by_baseline,
)
from repro.analysis.findings import Finding
from repro.cliutil import add_format_argument

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of known findings; anything beyond it fails",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="freeze the current findings into --baseline (or the "
             "default .repro-lint-baseline.json) and exit 0",
    )
    add_format_argument(parser)
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _print_rules() -> None:
    width = max(len(checker.rule) for checker in ALL_CHECKERS)
    for checker in ALL_CHECKERS:
        print(f"{checker.rule:<{width}}  [{checker.severity.value}] "
              f"{checker.description}")


def _report_text(fresh: List[Finding], known_count: int,
                 stale: dict) -> None:
    for finding in fresh:
        print(finding.render())
    if stale:
        print(
            f"stale baseline: {sum(stale.values())} baselined finding(s) "
            f"no longer reproduce -- re-freeze with --write-baseline",
            file=sys.stderr,
        )
    summary = f"{len(fresh)} new finding(s)"
    if known_count:
        summary += f", {known_count} baselined"
    print(summary, file=sys.stderr)


def _report_json(fresh: List[Finding], known: List[Finding],
                 stale: dict) -> None:
    print(json.dumps(
        {
            "new": [f.to_dict() for f in fresh],
            "baselined": [f.to_dict() for f in known],
            "stale_baseline_fingerprints": stale,
        },
        indent=2,
    ))


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint command; returns the process exit code."""
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN

    findings = run_checks(args.paths)

    if args.write_baseline:
        from repro.analysis.baseline import DEFAULT_BASELINE

        target = args.baseline or DEFAULT_BASELINE
        save_baseline(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}",
              file=sys.stderr)
        return EXIT_CLEAN

    known: List[Finding] = []
    fresh = findings
    stale: dict = {}
    if args.baseline is not None:
        try:
            allowed = load_baseline(args.baseline)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE
        known, fresh, stale = split_by_baseline(findings, allowed)

    if args.format == "json":
        _report_json(fresh, known, stale)
    else:
        _report_text(fresh, len(known), stale)
    return EXIT_FINDINGS if fresh or stale else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="crypto/protocol invariant linter for this repository",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via repro CLI
    sys.exit(main())
