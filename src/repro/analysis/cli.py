"""``python -m repro lint``: the CLI face of the invariant linter.

Exit codes: 0 when every finding is baselined (or there are none),
1 when new findings exist or the baseline is stale (lists debt that no
longer reproduces -- re-freeze with ``--update-baseline``), 2 on usage
errors (missing baseline file, unknown rule, bad git ref).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Set

from repro.analysis import ALL_CHECKERS, run_checks  # noqa: F401 - re-export
from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_by_baseline,
)
from repro.analysis.callgraph import Program
from repro.analysis.findings import Finding
from repro.analysis.framework import check_program, parse_modules
from repro.cliutil import add_format_argument

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of known findings; anything beyond it fails",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="freeze the current findings into --baseline (or the "
             "default .repro-lint-baseline.json) and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-freeze the baseline in place after paying down or "
             "accepting debt (same as --write-baseline; exists so the "
             "workflow never involves hand-editing JSON)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parse/summarize across N processes "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        dest="rules",
        help="run only this rule (repeatable); see --list-rules",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="dump the whole-program call graph as JSON and exit",
    )
    parser.add_argument(
        "--changed", default=None, metavar="GITREF",
        help="lint only files changed vs. GITREF plus their reverse "
             "call-graph dependents (the pre-commit fast path)",
    )
    add_format_argument(parser)
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _print_rules() -> None:
    width = max(len(checker.rule) for checker in ALL_CHECKERS)
    for checker in ALL_CHECKERS:
        print(f"{checker.rule:<{width}}  [{checker.severity.value}] "
              f"{checker.description}")


def _report_text(fresh: List[Finding], known_count: int,
                 stale: dict) -> None:
    for finding in fresh:
        print(finding.render())
    if stale:
        print(
            f"stale baseline: {sum(stale.values())} baselined finding(s) "
            f"no longer reproduce -- re-freeze with --update-baseline",
            file=sys.stderr,
        )
    summary = f"{len(fresh)} new finding(s)"
    if known_count:
        summary += f", {known_count} baselined"
    print(summary, file=sys.stderr)


def _report_json(fresh: List[Finding], known: List[Finding],
                 stale: dict) -> None:
    print(json.dumps(
        {
            "new": [f.to_dict() for f in fresh],
            "baselined": [f.to_dict() for f in known],
            "stale_baseline_fingerprints": stale,
        },
        indent=2,
    ))


def _select_checkers(rules: Optional[List[str]]):
    """Checkers for ``--rule`` filters (``None`` = the full suite)."""
    if not rules:
        return None, None
    known = {checker.rule: checker for checker in ALL_CHECKERS}
    unknown = [rule for rule in rules if rule not in known]
    if unknown:
        return None, f"unknown rule(s): {', '.join(sorted(unknown))}"
    return [known[rule] for rule in dict.fromkeys(rules)], None


def _git_changed_files(ref: str) -> Optional[Set[str]]:
    """Real paths of files changed vs. ``ref`` (``None`` on git error)."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", "-z", ref, "--"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        os.path.realpath(name)
        for name in proc.stdout.split("\0")
        if name
    }


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint command; returns the process exit code."""
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN

    checkers, error = _select_checkers(getattr(args, "rules", None))
    if error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE

    jobs = getattr(args, "jobs", None)
    modules, parse_errors = parse_modules(args.paths, jobs=jobs)
    program = Program.build(modules)

    if getattr(args, "graph", False):
        print(json.dumps(program.to_dict(), indent=2))
        return EXIT_CLEAN

    only_modules: Optional[Set[str]] = None
    changed_ref = getattr(args, "changed", None)
    if changed_ref is not None:
        changed_files = _git_changed_files(changed_ref)
        if changed_files is None:
            print(f"error: cannot diff against git ref {changed_ref!r}",
                  file=sys.stderr)
            return EXIT_USAGE
        path_map = program.module_of_path()
        changed_modules = {
            path_map[path] for path in changed_files if path in path_map
        }
        only_modules = program.dependent_modules(changed_modules)
        parse_errors = [
            finding for finding in parse_errors
            if os.path.realpath(finding.path) in changed_files
        ]
        print(
            f"--changed {changed_ref}: {len(changed_modules)} changed "
            f"module(s), {len(only_modules)} after reverse-dependency "
            f"expansion",
            file=sys.stderr,
        )

    findings = list(parse_errors)
    findings.extend(
        check_program(modules, program, checkers,
                      only_modules=only_modules)
    )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.write_baseline or getattr(args, "update_baseline", False):
        from repro.analysis.baseline import DEFAULT_BASELINE

        target = args.baseline or DEFAULT_BASELINE
        save_baseline(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}",
              file=sys.stderr)
        return EXIT_CLEAN

    known: List[Finding] = []
    fresh = findings
    stale: dict = {}
    if args.baseline is not None:
        try:
            allowed = load_baseline(args.baseline)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE
        known, fresh, stale = split_by_baseline(findings, allowed)

    if args.format == "json":
        _report_json(fresh, known, stale)
    else:
        _report_text(fresh, len(known), stale)
    return EXIT_FINDINGS if fresh or stale else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="crypto/protocol invariant linter for this repository",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via repro CLI
    sys.exit(main())
