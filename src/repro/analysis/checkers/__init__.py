"""The invariant checkers, one module per rule.

``ALL_CHECKERS`` is the registry the driver and the CLI iterate; adding
a checker means adding a module here and instantiating it in the list
(see docs/STATIC_ANALYSIS.md, "Adding a checker").
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.framework import Checker
from repro.analysis.checkers.rng_hygiene import RngHygieneChecker
from repro.analysis.checkers.channel_leak import ChannelLeakChecker
from repro.analysis.checkers.wire_tags import WireTagChecker
from repro.analysis.checkers.protocol_entry import ProtocolEntryChecker
from repro.analysis.checkers.telemetry_span import TelemetrySpanChecker
from repro.analysis.checkers.ciphertext_arith import CiphertextArithChecker
from repro.analysis.checkers.exception_hygiene import ExceptionHygieneChecker
from repro.analysis.checkers.mutable_defaults import MutableDefaultChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.branch_on_secret import BranchOnSecretChecker

ALL_CHECKERS: List[Checker] = [
    RngHygieneChecker(),
    ChannelLeakChecker(),
    WireTagChecker(),
    ProtocolEntryChecker(),
    TelemetrySpanChecker(),
    CiphertextArithChecker(),
    ExceptionHygieneChecker(),
    MutableDefaultChecker(),
    LockDisciplineChecker(),
    BranchOnSecretChecker(),
]


def checker_by_rule(rule: str) -> Optional[Checker]:
    """Look a checker up by its rule id (``None`` when unknown)."""
    for checker in ALL_CHECKERS:
        if checker.rule == rule:
            return checker
    return None


__all__ = ["ALL_CHECKERS", "checker_by_rule"]
