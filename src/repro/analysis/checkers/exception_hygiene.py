"""Rule ``exception-hygiene``: no handler may swallow ``TransportError``.

``repro.smc`` and ``repro.crypto`` are the layers where a swallowed
exception turns into silent protocol corruption: a ``TransportError``
caught by a bare ``except:`` (or an ``except Exception:`` that never
re-raises) lets a half-delivered message masquerade as success, and
the classification continues on stale or garbage values. Narrow
handlers (``ConnectionError``, ``socket.timeout``, ``OSError``) remain
fine -- they are how the transport implements its bounded retry policy
-- the rule only targets catch-alls.

Flags, inside ``repro.smc`` / ``repro.crypto``:

* bare ``except:`` handlers (always);
* ``except Exception:`` / ``except BaseException:`` handlers (alone or
  in a tuple) whose body contains no ``raise``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo

SCOPE = ("repro.smc", "repro.crypto")
BROAD = frozenset({"Exception", "BaseException"})


def _broad_names(type_node: ast.AST) -> bool:
    """Does the except type include Exception/BaseException?"""
    nodes = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in BROAD:
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


class ExceptionHygieneChecker(Checker):
    rule = "exception-hygiene"
    severity = Severity.ERROR
    description = (
        "no bare except: or swallowing except Exception: in repro.smc / "
        "repro.crypto -- they can eat TransportError mid-protocol"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope(SCOPE):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    mod,
                    node,
                    "bare except: swallows TransportError (and "
                    "KeyboardInterrupt); catch the specific transport/"
                    "crypto exceptions instead",
                )
            elif _broad_names(node.type) and not _reraises(node):
                yield self.finding(
                    mod,
                    node,
                    "except Exception without re-raise swallows "
                    "TransportError mid-protocol; narrow the handler or "
                    "re-raise",
                )
