"""Rule ``channel-leak``: decrypted values must not reach the channel raw.

The classic SMC implementation bug: a value obtained from ``decrypt``
(or read off private-key material) flows into ``channel.send`` /
``client_sends`` / ``server_sends`` / a transport write without being
re-encrypted, so plaintext crosses the two-party link.

The rule runs on the interprocedural taint engine
(:mod:`repro.analysis.taint`) over the whole-program call graph:

* **sources** -- calls whose name contains ``decrypt`` (``decrypt``,
  ``client_decrypt``, ``decrypt_raw``, ``client_decrypt_batch``, ...)
  and attribute reads of ``private_key`` / ``secret_key``;
* **propagation** -- through assignments, arithmetic, subscripts,
  f-strings, container displays/comprehensions, tuple unpacking,
  mutating method calls (``lst.append(tainted)`` taints ``lst``) and --
  new with the whole-program engine -- through *project function
  calls*, modelled by per-function summaries: a decrypt result passed
  through two helpers and sent by a third is flagged at the original
  call site with the full call chain rendered;
* **sanitizers** -- calls whose name contains ``encrypt`` or ``encode``
  (``client_encrypt``, ``encrypt_batch``, ``wire.encode``, ...): their
  results are clean regardless of argument taint;
* **sinks** -- ``send`` / ``client_sends`` / ``server_sends`` /
  ``send_frame`` / ``sendall`` / ``exchange`` calls: any tainted
  argument is a finding, whether the sink is in this function or
  reached through callees.

Calls that do not resolve to a project function keep the historical
conservative rule (tainted argument => tainted result), so
``interprocedural=False`` -- resolution disabled entirely -- reproduces
the original intra-function checker exactly; the regression corpus in
``tests/analysis`` pins that equivalence. Control dependence (a branch
condition on a decrypted value selecting what to send) remains out of
scope here: that is the ``branch-on-secret`` rule's territory.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo
from repro.analysis.taint import LeakEvent, engine_for


class ChannelLeakChecker(Checker):
    rule = "channel-leak"
    severity = Severity.ERROR
    description = (
        "decrypted or private-key-derived values may not flow into channel "
        "sends or transport writes unless re-encrypted or wire-encoded, "
        "across function boundaries"
    )

    def __init__(self, interprocedural: bool = True) -> None:
        self.interprocedural = interprocedural

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope():
            return
        engine = engine_for(
            self._program_for(mod), interprocedural=self.interprocedural
        )
        leaks, _ = engine.events_for(mod.module)
        for event in leaks:
            yield self._finding_for(mod, event)

    def _program_for(self, mod: ModuleInfo):
        if self.program is not None \
                and mod.module in self.program.modules:
            return self.program
        from repro.analysis.callgraph import Program

        return Program.build([mod])

    def _finding_for(self, mod: ModuleInfo, event: LeakEvent) -> Finding:
        message = (
            f"value derived from decrypt()/private-key material flows "
            f"into {event.sink}() in {event.func.name}() without passing "
            f"through encrypt/encode"
        )
        if len(event.chain) > 1:
            rendered = " -> ".join(event.chain)
            message += f" [call chain: {rendered}]"
        return Finding(
            rule=self.rule,
            severity=self.severity,
            path=mod.path,
            module=mod.module,
            line=event.line,
            message=message,
            snippet=mod.line_text(event.line),
            chain=event.chain if len(event.chain) > 1 else (),
        )
