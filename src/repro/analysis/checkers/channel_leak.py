"""Rule ``channel-leak``: decrypted values must not reach the channel raw.

The classic SMC implementation bug: a value obtained from ``decrypt``
(or read off private-key material) flows into ``channel.send`` /
``client_sends`` / ``server_sends`` / a transport write without being
re-encrypted, so plaintext crosses the two-party link. This checker is
a conservative intra-function taint analysis:

* **sources** -- calls whose name contains ``decrypt`` (``decrypt``,
  ``client_decrypt``, ``decrypt_raw``, ``client_decrypt_batch``, ...)
  and attribute reads of ``private_key`` / ``secret_key``;
* **propagation** -- through assignments, arithmetic, subscripts,
  f-strings, container displays/comprehensions, tuple unpacking, calls
  (a call with a tainted argument has a tainted result) and mutating
  method calls (``lst.append(tainted)`` taints ``lst``);
* **sanitizers** -- calls whose name contains ``encrypt`` or ``encode``
  (``client_encrypt``, ``encrypt_batch``, ``wire.encode``, ...): their
  results are clean regardless of argument taint;
* **sinks** -- ``send`` / ``client_sends`` / ``server_sends`` /
  ``send_frame`` / ``sendall`` / ``exchange`` calls: any tainted
  argument is a finding.

The analysis is flow-sensitive over a linearized statement walk and
runs two passes per function so loop-carried taint converges. Control
dependence (a branch condition on a decrypted value selecting what to
send) is deliberately out of scope: that is output leakage, priced by
the privacy model, not a transport bug.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo, call_name

SOURCE_ATTRS = frozenset({"private_key", "secret_key"})
SINK_NAMES = frozenset(
    {"send", "client_sends", "server_sends", "send_frame", "sendall",
     "exchange"}
)
MUTATORS = frozenset({"append", "extend", "insert", "add", "update"})


def _is_source_call(node: ast.Call) -> bool:
    return "decrypt" in call_name(node)


def _is_sanitizer_call(node: ast.Call) -> bool:
    name = call_name(node)
    return "encrypt" in name or "encode" in name


def _is_source_attr(node: ast.Attribute) -> bool:
    return node.attr in SOURCE_ATTRS


class _FunctionAnalysis:
    """Taint state and findings for one function body."""

    def __init__(self, checker: "ChannelLeakChecker", mod: ModuleInfo,
                 func: ast.AST) -> None:
        self.checker = checker
        self.mod = mod
        self.func = func
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []
        self._reported_lines: Set[int] = set()

    # -- expression taint ------------------------------------------------

    def expr_tainted(self, node: ast.AST) -> bool:
        """Does evaluating ``node`` produce a secret-derived value?"""
        if isinstance(node, ast.Call):
            if _is_sanitizer_call(node):
                return False
            if _is_source_call(node):
                return True
            # Conservative: a call fed tainted data returns tainted data.
            return any(
                self.expr_tainted(child)
                for child in ast.iter_child_nodes(node)
            )
        if isinstance(node, ast.Attribute):
            if _is_source_attr(node):
                return True
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            return False
        return any(
            self.expr_tainted(child) for child in ast.iter_child_nodes(node)
        )

    # -- statement walk --------------------------------------------------

    def run(self) -> List[Finding]:
        body = getattr(self.func, "body", [])
        # Two passes so taint introduced late in a loop body reaches
        # sinks earlier in the same loop on the second pass.
        for _ in range(2):
            self.process_body(body)
        return self.findings

    def process_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.process_stmt(stmt)

    def process_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are analysed as their own functions
        if isinstance(stmt, ast.Assign):
            self.check_sinks(stmt.value)
            tainted = self.expr_tainted(stmt.value)
            for target in stmt.targets:
                self.assign_target(target, tainted)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.check_sinks(stmt.value)
                self.assign_target(stmt.target, self.expr_tainted(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            self.check_sinks(stmt.value)
            if self.expr_tainted(stmt.value):
                self.assign_target(stmt.target, True)
            return
        if isinstance(stmt, ast.Expr):
            self.check_sinks(stmt.value)
            self.track_mutation(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_sinks(stmt.value)
            return
        if isinstance(stmt, ast.For):
            self.check_sinks(stmt.iter)
            self.assign_target(stmt.target, self.expr_tainted(stmt.iter))
            self.process_body(stmt.body)
            self.process_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.check_sinks(stmt.test)
            self.process_body(stmt.body)
            self.process_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.check_sinks(stmt.test)
            self.process_body(stmt.body)
            self.process_body(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.check_sinks(item.context_expr)
                if item.optional_vars is not None:
                    self.assign_target(
                        item.optional_vars,
                        self.expr_tainted(item.context_expr),
                    )
            self.process_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.process_body(stmt.body)
            for handler in stmt.handlers:
                self.process_body(handler.body)
            self.process_body(stmt.orelse)
            self.process_body(stmt.finalbody)
            return
        # Raise/Assert/Pass/Delete/Global/...: only scan for sink calls.
        for child in ast.iter_child_nodes(stmt):
            self.check_sinks(child)

    def assign_target(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign_target(element, tainted)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, tainted)
        elif isinstance(target, (ast.Subscript, ast.Attribute)) and tainted:
            # Writing a tainted value into a container/field taints the
            # whole container name (weak update).
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                self.tainted.add(base.id)

    def track_mutation(self, expr: ast.AST) -> None:
        """``lst.append(tainted)`` and friends taint ``lst``."""
        if not isinstance(expr, ast.Call):
            return
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATORS
            and isinstance(func.value, ast.Name)
            and any(self.expr_tainted(arg) for arg in expr.args)
        ):
            self.tainted.add(func.value.id)

    # -- sinks ------------------------------------------------------------

    def check_sinks(self, expr: ast.AST) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in SINK_NAMES:
                continue
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                if self.expr_tainted(arg):
                    line = node.lineno
                    if line in self._reported_lines:
                        break
                    self._reported_lines.add(line)
                    func_name = getattr(self.func, "name", "<lambda>")
                    self.findings.append(
                        self.checker.finding(
                            self.mod,
                            node,
                            f"value derived from decrypt()/private-key "
                            f"material flows into "
                            f"{call_name(node)}() in {func_name}() without "
                            f"passing through encrypt/encode",
                        )
                    )
                    break


class ChannelLeakChecker(Checker):
    rule = "channel-leak"
    severity = Severity.ERROR
    description = (
        "decrypted or private-key-derived values may not flow into channel "
        "sends or transport writes unless re-encrypted or wire-encoded in "
        "the same function"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope():
            return
        for func in mod.functions():
            yield from _FunctionAnalysis(self, mod, func).run()
