"""Rule ``lock-discipline``: guarded state must stay guarded.

The PR-5 race class, mechanized. The concurrent serving stack keeps
shared mutable state behind ``threading.Lock``/``RLock``/``Condition``
objects; the invariant is *consistency*: an attribute written under
``with self._lock`` anywhere in a class is lock-guarded state, and a
write to it outside the lock -- in code another thread can actually
execute -- is a data race waiting for load.

Inference, per class in scope:

1. **lock attributes** -- ``self._x = threading.Lock()`` (or ``RLock``
   / ``Condition``) marks ``_x`` as a lock; a ``Condition`` wrapping an
   existing lock counts as the same guard.
2. **guarded attributes** -- every ``self._*`` attribute assigned (or
   element-assigned, or ``del``-ed) inside a ``with self.<lock>:``
   block in any method of the class.
3. **violations** -- unguarded writes to a guarded attribute in a
   method *reachable from a thread or executor entry point* (per the
   whole-program call graph: ``Thread(target=...)``, ``Timer``,
   ``executor.submit``/``map``), excluding ``__init__``, which runs
   before the object is shared.

The reachability requirement keeps single-threaded setup code
(``start()`` wiring attributes before any worker exists) out of scope,
matching how the serving runtime is actually written. Findings render
the thread entry chain that reaches the offending method.

Scope: ``repro.serving``, ``repro.telemetry``,
``repro.crypto.precompute`` -- the three packages that share state
across threads today. Widen the tuple as concurrency spreads.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo, call_name

#: threading factories whose result guards state.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Packages whose classes share mutable state across threads.
THREADED_SCOPE = ("repro.serving", "repro.telemetry",
                  "repro.crypto.precompute")


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self._x`` (possibly under subscripts) -> ``"_x"``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _AttrWrite:
    """One write to ``self._*`` and whether a lock was held there."""

    __slots__ = ("attr", "line", "locked", "method")

    def __init__(self, attr: str, line: int, locked: bool,
                 method: str) -> None:
        self.attr = attr
        self.line = line
        self.locked = locked
        self.method = method


def _lock_attrs_of(cls_node: ast.ClassDef) -> Set[str]:
    locks: Set[str] = set()
    for node in ast.walk(cls_node):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        if call_name(node.value) not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _holds_lock(item: ast.withitem, locks: Set[str]) -> bool:
    """Is this ``with`` item ``self.<lock>`` (or a call on it)?"""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
        if isinstance(expr, ast.Attribute) and expr.attr in (
            "acquire", "hold",
        ):
            expr = expr.value
    attr = _self_attr(expr)
    return attr is not None and attr in locks


def _walk_writes(
    body: List[ast.stmt], locks: Set[str], method: str, locked: bool,
) -> Iterator[_AttrWrite]:
    """Yield ``self._*`` writes in ``body`` with lock state tracked."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(stmt, ast.With):
            inner = locked or any(
                _holds_lock(item, locks) for item in stmt.items
            )
            yield from _walk_writes(stmt.body, locks, method, inner)
            continue
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            flat = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in flat:
                attr = _self_attr(element)
                if attr is not None and attr.startswith("_"):
                    yield _AttrWrite(
                        attr, getattr(element, "lineno", stmt.lineno),
                        locked, method,
                    )
        for field_name in ("body", "orelse", "finalbody"):
            child = getattr(stmt, field_name, None)
            if isinstance(child, list):
                yield from _walk_writes(child, locks, method, locked)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _walk_writes(handler.body, locks, method, locked)


class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    severity = Severity.ERROR
    description = (
        "attributes guarded by 'with self._lock' elsewhere in the class "
        "may not be written without the lock in thread-reachable code"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope(THREADED_SCOPE):
            return
        program = self._program_for(mod)
        reachable = self._reachable(program)
        for cls in program.classes.values():
            if cls.module != mod.module:
                continue
            yield from self._check_class(mod, program, cls, reachable)

    def _program_for(self, mod: ModuleInfo):
        if self.program is not None \
                and mod.module in self.program.modules:
            return self.program
        from repro.analysis.callgraph import Program

        return Program.build([mod])

    def _reachable(self, program) -> Set[str]:
        cache = program._taint_cache
        if "thread-reachable" not in cache:
            cache["thread-reachable"] = program.reachable_from_threads()
        return cache["thread-reachable"]

    def _check_class(
        self, mod: ModuleInfo, program, cls, reachable: Set[str]
    ) -> Iterator[Finding]:
        locks = _lock_attrs_of(cls.node)
        if not locks:
            return
        writes: List[Tuple[str, _AttrWrite]] = []
        guarded: Set[str] = set()
        for name, info in cls.methods.items():
            body = getattr(info.node, "body", [])
            for write in _walk_writes(body, locks, name, locked=False):
                if write.attr in locks:
                    continue
                writes.append((info.qualname, write))
                if write.locked:
                    guarded.add(write.attr)
        lock_name = min(locks)  # deterministic label for the message
        reported: Set[Tuple[int, str]] = set()
        findings: List[Finding] = []
        for qualname, write in writes:
            if write.locked or write.attr not in guarded:
                continue
            if write.method == "__init__":
                continue  # construction precedes sharing
            if qualname not in reachable:
                continue
            key = (write.line, write.attr)
            if key in reported:
                continue
            reported.add(key)
            chain = tuple(program.thread_path_to(qualname))
            rendered = (
                f" [thread entry chain: {' -> '.join(chain)}]"
                if chain else ""
            )
            findings.append(
                Finding(
                    rule=self.rule,
                    severity=self.severity,
                    path=mod.path,
                    module=mod.module,
                    line=write.line,
                    message=(
                        f"write to self.{write.attr} without holding "
                        f"self.{lock_name}: {cls.name} guards this "
                        f"attribute with the lock elsewhere, and "
                        f"{write.method}() runs on a worker thread"
                        f"{rendered}"
                    ),
                    snippet=mod.line_text(write.line),
                    chain=chain,
                )
            )
        findings.sort(key=lambda f: f.line)
        yield from findings
