"""Rule ``mutable-default``: no shared mutable default arguments.

A ``def f(acc=[])`` default is evaluated once and shared across calls.
In protocol code that pattern is worse than the usual footgun: a trace
list or key cache shared between two sessions crosses the party
boundary of the threat model. Flags list/dict/set displays,
comprehensions and bare ``list()``/``dict()``/``set()`` calls used as
parameter defaults anywhere in ``repro`` (frozen dataclass defaults
like ``TransportConfig()`` are fine and not matched).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False


class MutableDefaultChecker(Checker):
    rule = "mutable-default"
    severity = Severity.WARNING
    description = (
        "parameter defaults must not be mutable (list/dict/set literals "
        "or constructors); use None plus an in-body default"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        for func in mod.functions():
            args = func.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield self.finding(
                        mod,
                        default,
                        f"mutable default argument in {func.name}(); the "
                        f"object is shared across every call",
                    )
