"""Rule ``branch-on-secret``: advisory on secret-dependent control flow.

The timing side of the channel-leak taint lattice. ``channel-leak``
tracks *value* flow: a decrypted value must not cross the wire raw.
This rule tracks *control* flow: an ``if``/``while``/ternary/``assert``
whose condition derives from a decrypt result (locally or through a
project function returning one, per the shared interprocedural taint
engine) makes execution time and message schedule depend on a secret --
the classic small-leak channel DGK-style protocols are careful to
blind away.

It is a **warning**, not an error, because some secret-dependent
branches are the protocol's *designed output*: the comparison protocols
legitimately reveal a single comparison bit to one party, and acting on
that bit is the point. Those sites carry a
``# repro: allow[branch-on-secret]`` pragma documenting the disclosure;
anything without a pragma deserves a look -- either it is fine (add the
pragma with a justification) or a decrypted intermediate is steering
control flow it should not.

Scope: ``repro.smc`` and ``repro.secure`` -- the two packages that
execute protocol steps on live secrets.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo
from repro.analysis.taint import engine_for

SECRET_SCOPE = ("repro.smc", "repro.secure")


class BranchOnSecretChecker(Checker):
    rule = "branch-on-secret"
    severity = Severity.WARNING
    description = (
        "control flow conditioned on decrypt-derived values leaks via "
        "timing/message schedule; justify designed disclosures with a "
        "pragma"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope(SECRET_SCOPE):
            return
        engine = engine_for(self._program_for(mod))
        _, branches = engine.events_for(mod.module)
        for event in branches:
            yield Finding(
                rule=self.rule,
                severity=self.severity,
                path=mod.path,
                module=mod.module,
                line=event.line,
                message=(
                    f"'{event.kind}' conditioned on a decrypt-derived "
                    f"value in {event.func.name}(): execution timing now "
                    f"depends on a secret -- blind it, or pragma the "
                    f"designed disclosure"
                ),
                snippet=mod.line_text(event.line),
            )

    def _program_for(self, mod: ModuleInfo):
        if self.program is not None \
                and mod.module in self.program.modules:
            return self.program
        from repro.analysis.callgraph import Program

        return Program.build([mod])
