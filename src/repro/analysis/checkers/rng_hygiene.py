"""Rule ``rng-hygiene``: crypto code must not touch ambient RNGs.

``random`` (Mersenne Twister) and ``numpy.random`` are fine for data
synthesis and experiment plumbing, but a Paillier nonce, a DGK blinding
factor or an OT key drawn from them is predictable from a handful of
outputs. Inside the cryptographic packages every draw must route
through :mod:`repro.crypto.rand`, which owns the deterministic-vs-OS-
entropy split (``DeterministicRandom`` seeded for reproducible
experiments, ``SystemRandom``-backed when ``seed is None``).

Flags, inside :data:`~repro.analysis.framework.CRYPTO_SCOPE` modules:

* ``import random`` / ``from random import ...``
* ``import numpy.random`` / ``from numpy.random import ...``
* attribute access ``np.random.*`` / ``numpy.random.*``

:mod:`repro.crypto.rand` itself is the one exempt module -- it is the
boundary that wraps the stdlib generators.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo

EXEMPT_MODULES = frozenset({"repro.crypto.rand"})

_NUMPY_ALIASES = frozenset({"numpy", "np", "_np"})


class RngHygieneChecker(Checker):
    rule = "rng-hygiene"
    severity = Severity.ERROR
    description = (
        "crypto/protocol code must draw randomness via repro.crypto.rand, "
        "never the ambient random/numpy.random generators"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope() or mod.module in EXEMPT_MODULES:
            return
        yield from self._check_imports(mod)
        yield from self._check_attributes(mod)

    def _check_imports(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random" or alias.name.startswith(
                        "numpy.random"
                    ):
                        yield self.finding(
                            mod,
                            node,
                            f"import of {alias.name!r} in crypto scope; "
                            f"route randomness through repro.crypto.rand",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                root = module.split(".")[0]
                if root == "random" or module.startswith("numpy.random"):
                    yield self.finding(
                        mod,
                        node,
                        f"import from {module!r} in crypto scope; "
                        f"route randomness through repro.crypto.rand",
                    )
                elif module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self.finding(
                        mod,
                        node,
                        "import of numpy.random in crypto scope; "
                        "route randomness through repro.crypto.rand",
                    )

    def _check_attributes(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in _NUMPY_ALIASES
            ):
                yield self.finding(
                    mod,
                    node,
                    f"use of {node.value.id}.random in crypto scope; "
                    f"route randomness through repro.crypto.rand",
                )
