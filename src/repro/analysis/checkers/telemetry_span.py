"""Rule ``telemetry-span``: entry points must declare their span name.

The observability contract (docs/OBSERVABILITY.md) names every protocol
span explicitly -- ``dgk.compare``, ``classify.tree`` and friends -- so
dashboards, the metrics inspector and the docs all speak one taxonomy.
:func:`repro.smc.protocol.protocol_entry` *can* derive a span name from
the function name when used bare, but inside the protocol packages that
fallback is a taxonomy leak: a rename would silently rename the span and
orphan every consumer of the old name.

This checker requires every ``@protocol_entry`` use in crypto scope to
pass an explicit ``span="..."`` keyword with a literal, non-empty,
dotted lower-case name. Out-of-scope code (examples, tests, scratch
experiments) may use the bare decorator freely.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo

DECORATOR_NAME = "protocol_entry"

#: Span names are dotted lower-case segments: ``dgk.compare_many``.
SPAN_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


def _entry_decorator(func: ast.AST) -> Optional[ast.AST]:
    """The ``protocol_entry`` decorator node of ``func``, if present."""
    for dec in getattr(func, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute) and target.attr == DECORATOR_NAME:
            return dec
        if isinstance(target, ast.Name) and target.id == DECORATOR_NAME:
            return dec
    return None


class TelemetrySpanChecker(Checker):
    rule = "telemetry-span"
    severity = Severity.ERROR
    description = (
        "@protocol_entry functions in crypto scope must declare an "
        "explicit literal span=\"...\" name (the span taxonomy is the "
        "contract; derived names drift on rename)"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope():
            return
        for func in mod.functions():
            dec = _entry_decorator(func)
            if dec is None:
                continue
            finding = self._check_decorator(mod, func, dec)
            if finding is not None:
                yield finding

    def _check_decorator(
        self, mod: ModuleInfo, func: ast.AST, dec: ast.AST
    ) -> Optional[Finding]:
        func_name = getattr(func, "name", "<lambda>")
        if not isinstance(dec, ast.Call):
            return self.finding(
                mod,
                dec,
                f"protocol entry point {func_name}() uses the bare "
                f"@protocol_entry decorator; declare its span name "
                f'explicitly: @protocol_entry(span="...")',
            )
        span_kw = next(
            (kw for kw in dec.keywords if kw.arg == "span"), None
        )
        if span_kw is None:
            return self.finding(
                mod,
                dec,
                f"protocol entry point {func_name}() does not declare a "
                f'span name; add span="..." to its @protocol_entry call',
            )
        value = span_kw.value
        if not (isinstance(value, ast.Constant) and
                isinstance(value.value, str)):
            return self.finding(
                mod,
                span_kw.value,
                f"protocol entry point {func_name}() computes its span "
                f"name; the taxonomy requires a string literal",
            )
        if not SPAN_NAME_RE.match(value.value):
            return self.finding(
                mod,
                span_kw.value,
                f"protocol entry point {func_name}() declares span "
                f"{value.value!r}; span names are dotted lower-case "
                f'segments like "dgk.compare"',
            )
        return None
