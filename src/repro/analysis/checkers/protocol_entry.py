"""Rule ``protocol-entry``: entry points must reset the channel phase.

Round accounting (and therefore every latency estimate the cost model
produces) hinges on each protocol entry point opening a fresh phase:
the first message of a composed sub-protocol must start a new round
regardless of which party spoke last. PR 2 introduced
``channel.reset_direction()`` for exactly this, and
:func:`repro.smc.protocol.protocol_entry` marks the functions that own
one.

This checker enforces the contract statically: any function decorated
with ``@protocol_entry`` that performs a direct channel send
(``client_sends`` / ``server_sends`` / ``send``) must call
``reset_direction()`` at some earlier point in its body. Functions
that only delegate to other entry points (no direct sends) pass
trivially -- the callee owns the reset. Deliberate exceptions (e.g. an
entry point whose first wire crossing happens inside a composed
sub-protocol that resets for it) carry the suppression pragma plus a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo, call_name, walk_in_order

DECORATOR_NAME = "protocol_entry"
SEND_NAMES = frozenset({"client_sends", "server_sends", "send"})
RESET_NAME = "reset_direction"


def _decorator_matches(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr == DECORATOR_NAME
    if isinstance(node, ast.Name):
        return node.id == DECORATOR_NAME
    return False


def is_protocol_entry(func: ast.AST) -> bool:
    """Does ``func`` carry the ``@protocol_entry`` decorator?"""
    return any(
        _decorator_matches(dec)
        for dec in getattr(func, "decorator_list", [])
    )


class ProtocolEntryChecker(Checker):
    rule = "protocol-entry"
    severity = Severity.ERROR
    description = (
        "@protocol_entry functions that send directly on the channel must "
        "call channel.reset_direction() before their first send"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope():
            return
        for func in mod.functions():
            if not is_protocol_entry(func):
                continue
            finding = self._check_function(mod, func)
            if finding is not None:
                yield finding

    def _check_function(
        self, mod: ModuleInfo, func: ast.AST
    ) -> Optional[Finding]:
        first_send: Optional[ast.Call] = None
        first_reset: Optional[ast.Call] = None
        for node in walk_in_order(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                    node is not func:
                continue  # nested defs are separate entry points (or not)
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == RESET_NAME and first_reset is None:
                first_reset = node
            elif name in SEND_NAMES and first_send is None:
                first_send = node
        if first_send is None:
            return None  # pure delegation: the composed callees reset
        send_pos = (first_send.lineno, first_send.col_offset)
        if first_reset is not None and \
                (first_reset.lineno, first_reset.col_offset) < send_pos:
            return None
        func_name = getattr(func, "name", "<lambda>")
        return self.finding(
            mod,
            first_send,
            f"protocol entry point {func_name}() sends on the channel "
            f"before calling reset_direction(); round accounting will "
            f"fold this phase into the caller's last round",
        )
