"""Rule ``wire-tags``: every wire tag must have an encode AND a decode path.

A tag constant with an encoder but no decoder is a protocol landmine:
the sending side happily emits frames the receiving side rejects as
"unknown type tag", typically only on the first message shape a new
feature exercises in production. The converse (decoder without
encoder) hides dead protocol surface that drifts unreviewed.

This checker activates on any module defining ``TAG_*`` integer
constants (in this repository, :mod:`repro.smc.wire`). For each tag it
requires at least one reference inside an *encode-side* function (name
containing ``encode`` or ``size``) and one inside a *decode-side*
function (name containing ``decode``). The same discipline applies to
the ciphertext classes registered with the codec: every ``*Ciphertext``
class imported or defined by the module must appear on both sides, so
registering a fourth ciphertext scheme without teaching the decoder
about it fails the lint gate rather than a live session.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo


def _module_tag_constants(mod: ModuleInfo) -> Dict[str, ast.stmt]:
    """Module-level ``TAG_*`` assignments -> their defining statement."""
    tags: Dict[str, ast.stmt] = {}
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id.startswith("TAG_"):
                tags[target.id] = stmt
    return tags


def _ciphertext_classes(mod: ModuleInfo) -> Dict[str, ast.stmt]:
    """Names ending in ``Ciphertext`` imported or defined at module level."""
    classes: Dict[str, ast.stmt] = {}
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                name = alias.asname or alias.name
                if name.endswith("Ciphertext"):
                    classes[name] = stmt
        elif isinstance(stmt, ast.ClassDef) and stmt.name.endswith(
            "Ciphertext"
        ):
            classes[stmt.name] = stmt
    return classes


def _names_used_in(functions: List[ast.AST]) -> Set[str]:
    used: Set[str] = set()
    for func in functions:
        for node in ast.walk(func):
            if isinstance(node, ast.Name):
                used.add(node.id)
    return used


class WireTagChecker(Checker):
    rule = "wire-tags"
    severity = Severity.ERROR
    description = (
        "every TAG_* wire constant and every registered ciphertext class "
        "needs both an encode branch and a decode branch"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        tags = _module_tag_constants(mod)
        if not tags:
            return

        encode_side: List[ast.AST] = []
        decode_side: List[ast.AST] = []
        for func in mod.functions():
            name = func.name.lower()
            if "decode" in name:
                decode_side.append(func)
            if "encode" in name or "size" in name:
                encode_side.append(func)

        encode_names = _names_used_in(encode_side)
        decode_names = _names_used_in(decode_side)

        for tag, stmt in sorted(tags.items()):
            if tag not in encode_names:
                yield self.finding(
                    mod,
                    stmt,
                    f"wire tag {tag} has no encode branch (not referenced "
                    f"in any encode/size function)",
                )
            if tag not in decode_names:
                yield self.finding(
                    mod,
                    stmt,
                    f"wire tag {tag} has no decode branch (not referenced "
                    f"in any decode function)",
                )

        for cls, stmt in sorted(_ciphertext_classes(mod).items()):
            if cls not in encode_names:
                yield self.finding(
                    mod,
                    stmt,
                    f"ciphertext class {cls} is registered with the codec "
                    f"module but never encoded",
                )
            if cls not in decode_names:
                yield self.finding(
                    mod,
                    stmt,
                    f"ciphertext class {cls} is registered with the codec "
                    f"module but never decoded",
                )
