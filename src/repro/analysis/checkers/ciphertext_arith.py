"""Rule ``ciphertext-arith``: only ring operations on ciphertext names.

Paillier/DGK/GM ciphertexts support homomorphic addition and scalar
multiplication -- nothing else. ``ct / 2`` silently computes garbage in
the exponent group, a float anywhere near a ciphertext means a lost
quantisation step, and ``ct == 3`` compares a group element against a
plaintext (always false for a semantically secure scheme, and if it
ever *is* meaningful the scheme is broken). All three appear routinely
when plaintext model code is ported onto the encrypted path.

Ciphertext-typed names are inferred per function from

* parameter/variable annotations whose source contains ``Ciphertext``,
* assignment from a call whose name contains ``encrypt`` (e.g.
  ``client_encrypt``, ``encrypt_batch``, ``server_encrypt``) or
  ``rerandomize``.

Flagged, per function:

* any ``/`` or ``//`` binary operation with a ciphertext operand,
* any binary operation mixing a ciphertext name and a float literal,
* ``==`` / ``!=`` between a ciphertext name and a numeric literal.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, ModuleInfo, call_name


def _annotation_is_ciphertext(annotation: ast.AST) -> bool:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and "Ciphertext" in node.id:
            return True
        if isinstance(node, ast.Attribute) and "Ciphertext" in node.attr:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and "Ciphertext" in node.value:
            return True
    return False


def _is_encrypt_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    return "encrypt" in name or "rerandomize" in name


def _ciphertext_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        if arg.annotation is not None and _annotation_is_ciphertext(
            arg.annotation
        ):
            names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_is_ciphertext(node.annotation):
                names.add(node.target.id)
        elif isinstance(node, ast.Assign) and _is_encrypt_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _mentions(node: ast.AST, names: Set[str]) -> bool:
    """Does ``node`` reference one of ``names`` directly (not via calls)?"""
    if isinstance(node, ast.Name):
        return node.id in names
    if isinstance(node, ast.Call):
        return False  # call results are a different value
    return any(_mentions(child, names) for child in ast.iter_child_nodes(node))


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_float_literal(node.operand)
    return False


def _is_numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_numeric_literal(node.operand)
    return False


class CiphertextArithChecker(Checker):
    rule = "ciphertext-arith"
    severity = Severity.ERROR
    description = (
        "no division, float literals or ==-against-literal on "
        "ciphertext-typed names (only ring operations are homomorphic)"
    )

    def check(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not mod.in_scope():
            return
        for func in mod.functions():
            names = _ciphertext_names(func)
            if names:
                yield from self._check_function(mod, func, names)

    def _check_function(
        self, mod: ModuleInfo, func: ast.AST, names: Set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.BinOp):
                operands = (node.left, node.right)
                involves_ct = any(_mentions(op, names) for op in operands)
                if not involves_ct:
                    continue
                if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                    yield self.finding(
                        mod,
                        node,
                        "division applied to a ciphertext-typed value; "
                        "homomorphic ciphertexts only support addition "
                        "and scalar multiplication",
                    )
                elif any(_is_float_literal(op) for op in operands):
                    yield self.finding(
                        mod,
                        node,
                        "float literal combined with a ciphertext-typed "
                        "value; quantise to the fixed-point integer "
                        "encoding first",
                    )
            elif isinstance(node, ast.Compare):
                comparands = [node.left] + list(node.comparators)
                has_ct = any(
                    isinstance(c, ast.Name) and c.id in names
                    for c in comparands
                )
                if not has_ct:
                    continue
                for op, comparand in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.Eq, ast.NotEq)) and (
                        _is_numeric_literal(comparand)
                        or _is_numeric_literal(node.left)
                    ):
                        yield self.finding(
                            mod,
                            node,
                            "==/!= between a ciphertext-typed value and a "
                            "numeric literal; compare the decrypted "
                            "plaintext (or use a secure comparison) "
                            "instead",
                        )
                        break
