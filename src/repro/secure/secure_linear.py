"""Secure hyperplane (linear) classification with partial disclosure.

Protocol (Bost et al. hyperplane decision, extended with disclosure):

1. the client discloses the plaintext values of features in ``S``; the
   server folds their weighted contribution plus the bias into a
   per-class plaintext offset -- zero cryptographic cost;
2. the client Paillier-encrypts the *hidden* feature values once and
   ships them;
3. the server computes one encrypted affine score per class
   homomorphically;
4. binary models finish with a single sign test on the score
   difference; multi-class models run the secure argmax.

Model parameters are fixed-point encoded once at construction; the
quantised plaintext reference (:meth:`SecureLinearClassifier.predict_quantized`)
uses the same integers, so the secure path is bit-exact against it.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.classifiers.linear import LogisticRegressionClassifier
from repro.data.schema import FeatureSpec
from repro.secure.base import (
    SecureClassificationError,
    SecureClassifier,
    default_backend,
    resolve_backend,
)
from repro.secure.costing import (
    FRAME_OVERHEAD,
    LIST_OVERHEAD,
    SMALL_INT_BYTES,
    ProtocolSizes,
)
from repro.secure.encoding import FixedPointEncoder, score_bound
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import ExecutionTrace, protocol_entry


class SecureLinearClassifier(SecureClassifier):
    """Two-party hyperplane evaluation of a fitted logistic regression.

    Parameters
    ----------
    model:
        A fitted :class:`LogisticRegressionClassifier`.
    features:
        Schema of the feature columns (for domains and sensitivity).
    encoder:
        Fixed-point encoder shared with the quantised reference.
    sizes:
        Key sizes for the analytic cost estimates.
    """

    def __init__(
        self,
        model: LogisticRegressionClassifier,
        features,
        encoder: FixedPointEncoder = FixedPointEncoder(),
        sizes: ProtocolSizes = ProtocolSizes(),
    ) -> None:
        super().__init__(features, sizes)
        if model.n_features != self.n_features:
            raise SecureClassificationError(
                f"model has {model.n_features} features, schema has "
                f"{self.n_features}"
            )
        self.model = model
        self.encoder = encoder
        self.weight_rows: List[List[int]] = encoder.encode_matrix(model.weights)
        self.biases: List[int] = encoder.encode_vector(model.biases)
        self.classes = [int(c) for c in model.classes]
        max_values = [spec.domain_size - 1 for spec in self.features]
        self.score_bits = score_bound(
            self.weight_rows, self.biases, max_values
        ).bit_length() + 1

    # -- plaintext reference ------------------------------------------------

    def quantized_scores(self, row: np.ndarray) -> List[int]:
        """Integer per-class scores -- the exact values the protocol
        computes under encryption."""
        row = self.validate_row(row)
        return [
            int(sum(w * int(x) for w, x in zip(weights, row)) + bias)
            for weights, bias in zip(self.weight_rows, self.biases)
        ]

    def predict_quantized(self, row: np.ndarray) -> int:
        """Plaintext prediction over the quantised scores -- the exact
        decision the protocol reaches.

        Binary models mirror the sign test's tie rule (ties go to class
        1); multi-class ties are resolved randomly by the permuted
        secure argmax, so this reference returns the first maximum
        (ties are measure-zero for real models and the parity tests
        compare score values, not indices, when a tie occurs).
        """
        scores = self.quantized_scores(row)
        if len(scores) == 2:
            return self.classes[1] if scores[1] >= scores[0] else self.classes[0]
        best = max(scores)
        return self.classes[scores.index(best)]

    # -- live protocol ------------------------------------------------------

    @protocol_entry(span="classify.linear")
    def classify(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> int:
        row = self.validate_row(row)
        disclosed, hidden = self.partition(disclosure_set)
        ctx.channel.reset_direction()

        # Client -> server: plaintext disclosed values (cheap ints).
        if disclosed:
            ctx.channel.client_sends([int(row[i]) for i in disclosed])

        # Per-class plaintext offsets from bias + disclosed features.
        offsets = [
            bias + sum(weights[i] * int(row[i]) for i in disclosed)
            for weights, bias in zip(self.weight_rows, self.biases)
        ]

        if not hidden:
            # Everything disclosed: the server evaluates in plaintext
            # and returns only the label (which is the protocol output
            # anyway) -- SMC degenerates to a single message.
            best = max(offsets)
            if len(offsets) == 2:
                winner = 1 if offsets[1] >= offsets[0] else 0
            else:
                winner = offsets.index(best)
            return int(ctx.channel.server_sends(self.classes[winner]))

        # Protected feature transfer, then one protected affine score
        # per class (the client-side transfer cost is paid once and
        # reused across classes) -- all through the session's protocol
        # backend, so the same code path runs Paillier or shares.
        backend = resolve_backend(ctx)
        state = backend.begin_query(ctx, self.score_bits)
        protected = backend.encrypt_features(
            state, [int(row[i]) for i in hidden]
        )
        scores = backend.dot_products(
            state,
            protected,
            [[weights[i] for i in hidden] for weights in self.weight_rows],
            offsets,
        )

        if len(scores) == 2:
            # Sign test on score_1 - score_0 >= 0.
            bit = backend.sign_test_client_learns(state, scores)
            return self.classes[bit]

        winner = backend.argmax_client_learns(state, scores)
        return self.classes[winner]

    # -- analytic cost --------------------------------------------------------

    def estimated_trace(
        self,
        disclosure_set: Iterable[int] = (),
        *,
        backend=None,
    ) -> ExecutionTrace:
        if backend is None:
            backend = default_backend()
        disclosed, hidden = self.partition(disclosure_set)
        trace = ExecutionTrace(
            label=f"linear|{backend.name}|hidden={len(hidden)}"
        )
        n_classes = len(self.classes)
        if disclosed:
            trace.bytes_client_to_server += (
                FRAME_OVERHEAD + LIST_OVERHEAD
                + SMALL_INT_BYTES * len(disclosed)
            )
            trace.messages += 1
            trace.rounds += 1
        if not hidden:
            # Plaintext fast path: one label message back.
            trace.bytes_server_to_client += FRAME_OVERHEAD + SMALL_INT_BYTES
            trace.messages += 1
            trace.rounds += 1
            return trace
        backend.trace_encrypt_vector(
            trace, len(hidden), self.sizes, self.score_bits
        )
        backend.trace_dot_products(
            trace,
            [
                sum(1 for i in hidden if weights[i] != 0)
                for weights in self.weight_rows
            ],
            self.sizes,
            self.score_bits,
        )
        if n_classes == 2:
            backend.trace_sign_test(trace, self.score_bits, self.sizes)
        else:
            backend.trace_argmax(
                trace, n_classes, self.score_bits, self.sizes
            )
        return trace
