"""Secure naive-Bayes classification with partial disclosure.

Protocol (Bost et al. naive Bayes, extended with disclosure):

1. disclosed features contribute their log-likelihood table entries to
   a per-class plaintext offset -- no cryptography;
2. for each *hidden* feature the client ships an encrypted one-hot
   indicator vector over that feature's domain; the server adds the
   homomorphic inner product with its log-probability column to every
   class score (``domain_size`` scalar multiplications per class);
3. the per-class encrypted scores (log prior + contributions), shifted
   to be non-negative, feed the secure argmax; the client learns the
   class.

Log-probabilities are fixed-point encoded; the quantised plaintext
reference (:meth:`SecureNaiveBayesClassifier.predict_quantized`) shares
the integer tables, making the secure path exactly reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.classifiers.naive_bayes import NaiveBayesClassifier
from repro.secure.base import SecureClassificationError, SecureClassifier
from repro.secure.costing import (
    FRAME_OVERHEAD,
    LIST_OVERHEAD,
    SMALL_INT_BYTES,
    ProtocolSizes,
    add_encrypt_vector,
    add_indicator_lookup,
    add_secure_argmax,
)
from repro.secure.encoding import FixedPointEncoder
from repro.smc.argmax import secure_argmax
from repro.smc.context import TwoPartyContext
from repro.smc.lookup import encrypt_indicator_vector, indicator_lookup
from repro.smc.protocol import ExecutionTrace, Op, protocol_entry


class SecureNaiveBayesClassifier(SecureClassifier):
    """Two-party evaluation of a fitted categorical naive Bayes model."""

    def __init__(
        self,
        model: NaiveBayesClassifier,
        features,
        encoder: FixedPointEncoder = FixedPointEncoder(),
        sizes: ProtocolSizes = ProtocolSizes(),
    ) -> None:
        super().__init__(features, sizes)
        if model.n_features != self.n_features:
            raise SecureClassificationError(
                f"model has {model.n_features} features, schema has "
                f"{self.n_features}"
            )
        for index, spec in enumerate(self.features):
            if model.domain_sizes[index] != spec.domain_size:
                raise SecureClassificationError(
                    f"feature {spec.name!r}: model domain "
                    f"{model.domain_sizes[index]} != schema {spec.domain_size}"
                )
        self.model = model
        self.encoder = encoder
        self.classes = [int(c) for c in model.classes]
        # Integer tables: log_priors (k,), per feature (k, dom) entries.
        self.int_priors: List[int] = encoder.encode_vector(model.log_priors)
        self.int_tables: List[List[List[int]]] = [
            encoder.encode_matrix(table) for table in model.log_likelihoods
        ]
        # Scores are sums of negative log-probabilities; bound them for
        # the comparison bit-length.
        worst = max(abs(p) for p in self.int_priors) + sum(
            max(abs(entry) for row in table for entry in row)
            for table in self.int_tables
        )
        self.score_bits = max(worst, 1).bit_length() + 1

    # -- plaintext reference ------------------------------------------------

    def quantized_scores(self, row: np.ndarray) -> List[int]:
        """Integer per-class joint log scores, exactly as computed under
        encryption."""
        row = self.validate_row(row)
        scores = list(self.int_priors)
        for feature, value in enumerate(row):
            table = self.int_tables[feature]
            for class_pos in range(len(scores)):
                scores[class_pos] += table[class_pos][int(value)]
        return scores

    def predict_quantized(self, row: np.ndarray) -> int:
        """Plaintext argmax over quantised scores (first max on ties)."""
        scores = self.quantized_scores(row)
        best = max(scores)
        return self.classes[scores.index(best)]

    # -- live protocol --------------------------------------------------------

    @protocol_entry(span="classify.naive_bayes")
    def classify(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> int:
        row = self.validate_row(row)
        disclosed, hidden = self.partition(disclosure_set)
        n_classes = len(self.classes)
        ctx.channel.reset_direction()

        if disclosed:
            ctx.channel.client_sends([int(row[i]) for i in disclosed])

        # Plaintext offsets: priors + disclosed features' table entries.
        offsets = [
            self.int_priors[c]
            + sum(self.int_tables[f][c][int(row[f])] for f in disclosed)
            for c in range(n_classes)
        ]

        if not hidden:
            # Everything disclosed: plaintext argmax, one label message.
            winner = offsets.index(max(offsets))
            return int(ctx.channel.server_sends(self.classes[winner]))

        # Encrypted scores: start from offsets, add one indicator lookup
        # per hidden feature per class (indicators shipped once). The
        # per-class offset encryptions run as one engine batch.
        scores = ctx.server_encrypt_batch(offsets)
        for feature in hidden:
            indicators = encrypt_indicator_vector(
                ctx, int(row[feature]), self.features[feature].domain_size
            )
            for c in range(n_classes):
                contribution = indicator_lookup(
                    ctx, indicators, self.int_tables[feature][c]
                )
                scores[c] = ctx.add(scores[c], contribution)

        shift = 1 << (self.score_bits - 1)
        shifted = [ctx.add(score, shift) for score in scores]
        winner = secure_argmax(ctx, shifted, self.score_bits)
        return self.classes[winner]

    # -- analytic cost ----------------------------------------------------------

    def estimated_trace(self, disclosure_set: Iterable[int] = ()) -> ExecutionTrace:
        disclosed, hidden = self.partition(disclosure_set)
        trace = ExecutionTrace(label=f"naive-bayes|hidden={len(hidden)}")
        n_classes = len(self.classes)
        if disclosed:
            trace.bytes_client_to_server += (
                FRAME_OVERHEAD + LIST_OVERHEAD
                + SMALL_INT_BYTES * len(disclosed)
            )
            trace.messages += 1
            trace.rounds += 1
        if not hidden:
            # Plaintext fast path: one label message back.
            trace.bytes_server_to_client += FRAME_OVERHEAD + SMALL_INT_BYTES
            trace.messages += 1
            trace.rounds += 1
            return trace
        # Server encrypts the per-class offsets (the plaintext sums
        # themselves are free).
        trace.count(Op.PAILLIER_ENCRYPT, n_classes)
        for feature in hidden:
            domain = self.features[feature].domain_size
            add_encrypt_vector(trace, domain, self.sizes)
            for _ in range(n_classes):
                add_indicator_lookup(trace, domain, self.sizes)
            trace.count(Op.PAILLIER_ADD, n_classes)
        trace.count(Op.PAILLIER_ADD, n_classes)  # shift into [0, 2^bits)
        add_secure_argmax(trace, n_classes, self.score_bits, self.sizes)
        return trace
