"""Secure random-forest evaluation with partial disclosure.

Extends the single-tree protocol to an ensemble while revealing only
the *aggregate* decision:

1. disclosed values prune every tree; trees that resolve completely
   contribute their (server-computable) vote as a plaintext offset;
2. the client encrypts each hidden feature once, shared by all trees;
3. **all residual nodes of all trees** share one batched encrypted
   comparison -- the round count is independent of the ensemble size;
4. per tree, the server builds blinded leaf path-costs (as in the
   single tree) but does *not* attach labels; it ships the permuted
   cost lists;
5. the client locates each tree's zero-cost position and returns an
   encrypted one-hot vector per tree -- it learns only a per-tree
   permuted position, never the tree's class;
6. the server converts each one-hot into per-class vote increments
   (``[votes_c] += sum over leaves with label c of [e_leaf]``), adds
   the plaintext votes of fully-resolved trees, and the secure argmax
   gives the client the majority class -- and nothing else.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.classifiers.decision_tree import TreeNode
from repro.classifiers.forest import RandomForestClassifier
from repro.crypto.paillier import PaillierCiphertext
from repro.secure.base import SecureClassificationError, SecureClassifier
from repro.secure.costing import (
    FRAME_OVERHEAD,
    LIST_OVERHEAD,
    SMALL_INT_BYTES,
    ProtocolSizes,
    add_compare_encrypted_batch,
    add_encrypt_vector,
    add_secure_argmax,
)
from repro.secure.secure_tree import SecureDecisionTreeClassifier, _internal_nodes
from repro.smc.argmax import secure_argmax
from repro.smc.comparison import compare_encrypted_many
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import ExecutionTrace, Op, protocol_entry


class SecureRandomForestClassifier(SecureClassifier):
    """Two-party evaluation of a fitted random forest."""

    def __init__(
        self,
        model: RandomForestClassifier,
        features,
        feature_marginals: Optional[Sequence[np.ndarray]] = None,
        sizes: ProtocolSizes = ProtocolSizes(),
    ) -> None:
        super().__init__(features, sizes)
        if model.n_features != self.n_features:
            raise SecureClassificationError(
                f"model has {model.n_features} features, schema has "
                f"{self.n_features}"
            )
        self.model = model
        self.classes = [int(c) for c in model.classes]
        # Per-tree helpers reuse the single-tree pruning/costing logic.
        self._tree_wrappers = [
            SecureDecisionTreeClassifier(
                tree, features, feature_marginals=feature_marginals,
                sizes=sizes,
            )
            for tree in model.trees
        ]

    # -- plaintext reference ---------------------------------------------

    def predict_quantized(self, row: np.ndarray) -> int:
        """Tree voting is integer-exact; delegate to the plain forest."""
        return self.model.predict_one(self.validate_row(row))

    # -- live protocol -----------------------------------------------------

    @protocol_entry(span="classify.forest")
    def classify(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> int:
        row = self.validate_row(row)
        disclosed, hidden = self.partition(disclosure_set)
        n_classes = len(self.classes)
        class_position = {c: i for i, c in enumerate(self.classes)}
        ctx.channel.reset_direction()

        if disclosed:
            ctx.channel.client_sends([int(row[i]) for i in disclosed])

        residuals = [
            wrapper.pruned_tree(row, disclosed)
            for wrapper in self._tree_wrappers
        ]
        plaintext_votes = [0] * n_classes
        live_trees = []
        for residual in residuals:
            if residual.is_leaf:
                assert residual.label is not None
                plaintext_votes[class_position[int(residual.label)]] += 1
            else:
                live_trees.append(residual)

        if not live_trees:
            # Every tree resolved from disclosed values alone.
            winner = plaintext_votes.index(max(plaintext_votes))
            return int(ctx.channel.server_sends(self.classes[winner]))

        # Client encrypts each hidden feature used by any residual tree.
        used_features = sorted({
            node.feature
            for residual in live_trees
            for node in _internal_nodes(residual)
        })
        ciphertexts = [ctx.client_encrypt(int(row[f])) for f in used_features]
        ctx.channel.reset_direction()
        ciphertexts = ctx.channel.client_sends(ciphertexts)
        encrypted = dict(zip(used_features, ciphertexts))

        # One comparison batch across the whole ensemble.
        bits = max(self.features[f].bit_length for f in used_features)
        flat_nodes: List[TreeNode] = []
        z_batch: List[PaillierCiphertext] = []
        for residual in live_trees:
            for node in _internal_nodes(residual):
                assert node.feature is not None and node.threshold is not None
                ctx.trace.count(Op.PAILLIER_ADD, 2)
                z_batch.append(
                    encrypted[node.feature] - (node.threshold + 1) + (1 << bits)
                )
                flat_nodes.append(node)
        bit_ciphertexts = compare_encrypted_many(ctx, z_batch, bits)
        branch_bits = {
            id(node): bit for node, bit in zip(flat_nodes, bit_ciphertexts)
        }

        # Per tree: blinded, permuted leaf path-costs (no labels attached).
        modulus = ctx.paillier.public_key.n
        per_tree_labels: List[List[int]] = []
        all_blinded: List[List[PaillierCiphertext]] = []
        for residual in live_trees:
            leaves: List[Tuple[PaillierCiphertext, int]] = []
            zero = ctx.server_encrypt(0)

            def collect(node: TreeNode, cost: PaillierCiphertext) -> None:
                if node.is_leaf:
                    assert node.label is not None
                    leaves.append((cost, int(node.label)))
                    return
                assert node.left is not None and node.right is not None
                bit = branch_bits[id(node)]
                ctx.trace.count(Op.PAILLIER_ADD, 1)
                collect(node.left, cost + bit)
                ctx.trace.count(Op.PAILLIER_ADD, 2)
                ctx.trace.count(Op.PAILLIER_SCALAR_MUL, 1)
                collect(node.right, cost + ((bit * -1) + 1))

            collect(residual, zero)
            order = list(range(len(leaves)))
            ctx.server_rng.shuffle(order)
            blinded = []
            labels = []
            for position in order:
                cost, label = leaves[position]
                rho = 1 + ctx.server_rng.randbelow(modulus - 1)
                ctx.trace.count(Op.PAILLIER_SCALAR_MUL)
                blinded.append(ctx.rerandomize(cost.mul_unsigned(rho)))
                labels.append(label)
            all_blinded.append(blinded)
            per_tree_labels.append(labels)
        ctx.channel.reset_direction()
        all_blinded = ctx.channel.server_sends(all_blinded)

        # Client: per tree, find the zero cost and answer with an
        # encrypted one-hot over the (permuted) leaf slots.
        one_hots: List[List[PaillierCiphertext]] = []
        for blinded in all_blinded:
            zero_position = None
            for position, cost_ct in enumerate(blinded):
                ctx.trace.count(Op.PAILLIER_DECRYPT)
                # Designed disclosure: the client learns which permuted
                # leaf slot matched -- that position is its protocol
                # output for this tree.
                # repro: allow[branch-on-secret]
                if ctx.paillier.private_key.decrypt_raw(cost_ct) == 0:
                    zero_position = position
                    break
            if zero_position is None:
                raise SecureClassificationError(
                    "no leaf path matched in a residual tree"
                )
            ctx.trace.count(Op.PAILLIER_ENCRYPT, len(blinded))
            one_hots.append([
                ctx.paillier.public_key.encrypt(
                    1 if position == zero_position else 0,
                    rng=ctx.client_rng,
                )
                for position in range(len(blinded))
            ])
        ctx.channel.reset_direction()
        one_hots = ctx.channel.client_sends(one_hots)

        # Server: votes_c = plaintext votes + sum of matching one-hots.
        votes = [ctx.server_encrypt(v) for v in plaintext_votes]
        for labels, indicators in zip(per_tree_labels, one_hots):
            for label, indicator in zip(labels, indicators):
                position = class_position[label]
                votes[position] = ctx.add(votes[position], indicator)

        vote_bits = max(1, len(self._tree_wrappers).bit_length())
        winner = secure_argmax(ctx, votes, vote_bits)
        return self.classes[winner]

    # -- analytic cost -------------------------------------------------------

    def estimated_trace(self, disclosure_set: Iterable[int] = ()) -> ExecutionTrace:
        disclosed, hidden = self.partition(disclosure_set)
        trace = ExecutionTrace(label=f"forest|hidden={len(hidden)}")
        n_classes = len(self.classes)

        if disclosed:
            trace.bytes_client_to_server += (
                FRAME_OVERHEAD + LIST_OVERHEAD
                + SMALL_INT_BYTES * len(disclosed)
            )
            trace.messages += 1
            trace.rounds += 1

        total_comparisons = 0.0
        total_leaves = 0.0
        used_hidden = set()
        disclosed_set = set(disclosed)
        for wrapper in self._tree_wrappers:
            from repro.secure.secure_tree import _ExpectedShape

            shape = _ExpectedShape()
            wrapper._expected_shape(
                wrapper.model.root, 1.0, 0.0, disclosed_set, shape
            )
            total_comparisons += shape.comparisons
            total_leaves += shape.leaves
            used_hidden.update(
                node.feature
                for node in _internal_nodes(wrapper.model.root)
                if node.feature not in disclosed_set
            )

        comparisons = int(round(total_comparisons))
        if comparisons == 0:
            trace.bytes_server_to_client += FRAME_OVERHEAD + SMALL_INT_BYTES
            trace.messages += 1
            trace.rounds += 1
            return trace

        add_encrypt_vector(trace, len(used_hidden), self.sizes)
        bits = (
            max(self.features[f].bit_length for f in used_hidden)
            if used_hidden else 1
        )
        trace.count(Op.PAILLIER_ADD, 2 * comparisons)
        add_compare_encrypted_batch(trace, comparisons, bits, self.sizes)

        leaves = max(int(round(total_leaves)), 2)
        # Path-cost sums + blinding + permuted cost lists.
        trace.count(Op.PAILLIER_ADD, 2 * comparisons)
        trace.count(Op.PAILLIER_SCALAR_MUL, comparisons + leaves)
        trace.count(Op.PAILLIER_RERANDOMIZE, leaves)
        # Nested per-tree lists: one inner list per live tree.
        n_trees = len(self._tree_wrappers)
        nested = (
            FRAME_OVERHEAD + LIST_OVERHEAD + n_trees * LIST_OVERHEAD
            + leaves * self.sizes.paillier_ct_wire_bytes
        )
        trace.bytes_server_to_client += nested
        trace.messages += 1
        trace.rounds += 1
        # Client decrypt-scan + one-hot uploads.
        trace.count(Op.PAILLIER_DECRYPT, leaves)
        trace.count(Op.PAILLIER_ENCRYPT, leaves)
        trace.bytes_client_to_server += nested
        trace.messages += 1
        trace.rounds += 1
        # Vote accumulation + argmax.
        trace.count(Op.PAILLIER_ENCRYPT, n_classes)
        trace.count(Op.PAILLIER_ADD, leaves)
        vote_bits = max(1, len(self._tree_wrappers).bit_length())
        add_secure_argmax(trace, n_classes, vote_bits, self.sizes)
        return trace
