"""Analytic execution traces for the secure protocols.

The disclosure optimizer evaluates thousands of candidate sets; running
live crypto for each is impossible, so these builders reproduce each
protocol's operation counts, traffic and rounds *analytically*. The
formulas mirror the protocol implementations in :mod:`repro.smc`
line-by-line; a test suite cross-checks them against live traces.

Two terms are data-dependent and priced at their expectations:

* the DGK comparison performs one extra homomorphic negation per
  1-bit of the server's value (expected half the width), and
* the encrypted comparison's server-side borrow reconstruction costs
  one extra scalar multiplication when the server's random share is 1
  (probability one half).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.smc.protocol import ExecutionTrace, Op
from repro.smc.wire import ELEMENT_OVERHEAD, FRAME_OVERHEAD

#: Wire element of a small non-negative integer (tag + u32 + 1-byte body):
#: shares, labels, feature values, OT indices below 128.
SMALL_INT_BYTES = ELEMENT_OVERHEAD + 1

#: Wire overhead of one list/tuple element (tag + u32 count).
LIST_OVERHEAD = ELEMENT_OVERHEAD


@dataclass(frozen=True)
class ProtocolSizes:
    """Key-size parameters that determine ciphertext wire sizes.

    All ``*_wire_bytes`` quantities are *element* sizes under the
    canonical codec (:mod:`repro.smc.wire`): tag byte + u32 length +
    body. Message formulas add :data:`~repro.smc.wire.FRAME_OVERHEAD`
    once per message and :data:`LIST_OVERHEAD` per (nested) list, so the
    analytic traces equal the live channel accounting -- and therefore
    the bytes observed on a real socket -- exactly.
    """

    paillier_bits: int = 512
    dgk_bits: int = 256
    statistical_security_bits: int = 40

    @property
    def paillier_ct_bytes(self) -> int:
        """A Paillier ciphertext body: an element of ``Z_{n^2}``."""
        return self.paillier_bits // 4

    @property
    def dgk_ct_bytes(self) -> int:
        """A DGK ciphertext body: an element of ``Z_n``."""
        return self.dgk_bits // 8

    @property
    def paillier_ct_wire_bytes(self) -> int:
        """A Paillier ciphertext element on the wire."""
        return ELEMENT_OVERHEAD + self.paillier_ct_bytes

    @property
    def dgk_ct_wire_bytes(self) -> int:
        """A DGK ciphertext element on the wire."""
        return ELEMENT_OVERHEAD + self.dgk_ct_bytes

    @property
    def blind_bytes(self) -> int:
        """Wire element of a revealed blinding quotient ``r >> l``:
        a ``kappa + 1``-bit integer in two's-complement encoding."""
        return ELEMENT_OVERHEAD + (self.statistical_security_bits + 1) // 8 + 1


def add_dgk_compare(trace: ExecutionTrace, bits: int, sizes: ProtocolSizes) -> None:
    """Costs of :func:`repro.smc.comparison.dgk_compare` on ``bits``-bit
    inputs (internal width is ``bits + 1`` after the doubling trick)."""
    width = bits + 1
    trace.count(Op.DGK_ENCRYPT, width + 1)       # client bits + server suffix seed
    trace.count(Op.DGK_ADD, width // 2 + 3 * width)  # xor(E[w/2]) + suffix + c_i
    trace.count(Op.DGK_SCALAR_MUL, 2 * width)
    trace.count(Op.DGK_ZERO_TEST, width)
    per_direction = FRAME_OVERHEAD + LIST_OVERHEAD + width * sizes.dgk_ct_wire_bytes
    trace.bytes_client_to_server += per_direction
    trace.bytes_server_to_client += per_direction
    trace.messages += 2
    trace.rounds += 2


def _add_blind_and_split(trace: ExecutionTrace, sizes: ProtocolSizes) -> None:
    """Shared head of both encrypted-comparison variants: blind, ship,
    decrypt."""
    trace.count(Op.PAILLIER_ADD)
    trace.count(Op.PAILLIER_RERANDOMIZE)
    trace.count(Op.PAILLIER_DECRYPT)
    trace.bytes_server_to_client += FRAME_OVERHEAD + sizes.paillier_ct_wire_bytes
    trace.messages += 1
    trace.rounds += 1


def add_compare_encrypted(
    trace: ExecutionTrace, bits: int, sizes: ProtocolSizes
) -> None:
    """Costs of :func:`repro.smc.comparison.compare_encrypted`."""
    _add_blind_and_split(trace, sizes)
    add_dgk_compare(trace, bits, sizes)
    trace.count(Op.PAILLIER_ENCRYPT, 2)           # d_high, borrow share
    trace.bytes_client_to_server += (
        FRAME_OVERHEAD + LIST_OVERHEAD + 2 * sizes.paillier_ct_wire_bytes
    )
    trace.messages += 1
    trace.rounds += 1
    # Borrow reconstruction: linear flip with probability 1/2, then the
    # two fixed subtractions.
    trace.count(Op.PAILLIER_SCALAR_MUL, 1)        # expectation rounded up
    trace.count(Op.PAILLIER_ADD, 3)


def add_compare_encrypted_client_learns(
    trace: ExecutionTrace, bits: int, sizes: ProtocolSizes
) -> None:
    """Costs of
    :func:`repro.smc.comparison.compare_encrypted_client_learns`."""
    _add_blind_and_split(trace, sizes)
    add_dgk_compare(trace, bits, sizes)
    # Reveal message: [r_high, server borrow share].
    trace.bytes_server_to_client += (
        FRAME_OVERHEAD + LIST_OVERHEAD + sizes.blind_bytes + SMALL_INT_BYTES
    )
    trace.messages += 1
    trace.rounds += 1


def add_compare_encrypted_batch(
    trace: ExecutionTrace, count: int, bits: int, sizes: ProtocolSizes
) -> None:
    """Costs of :func:`repro.smc.comparison.compare_encrypted_many`:
    per-instance operation counts, but a four-message transcript for
    the whole batch."""
    if count <= 0:
        return
    width = bits + 1
    # Server blinding batch (1 message).
    trace.count(Op.PAILLIER_ADD, count)
    trace.count(Op.PAILLIER_RERANDOMIZE, count)
    trace.bytes_server_to_client += (
        FRAME_OVERHEAD + LIST_OVERHEAD + count * sizes.paillier_ct_wire_bytes
    )
    trace.messages += 1
    trace.rounds += 1
    trace.count(Op.PAILLIER_DECRYPT, count)
    # Batched DGK (2 messages): a list of per-instance ciphertext lists.
    trace.count(Op.DGK_ENCRYPT, count * (width + 1))
    trace.count(Op.DGK_ADD, count * (width // 2 + 3 * width))
    trace.count(Op.DGK_SCALAR_MUL, count * 2 * width)
    trace.count(Op.DGK_ZERO_TEST, count * width)
    per_direction = FRAME_OVERHEAD + LIST_OVERHEAD + count * (
        LIST_OVERHEAD + width * sizes.dgk_ct_wire_bytes
    )
    trace.bytes_client_to_server += per_direction
    trace.bytes_server_to_client += per_direction
    trace.messages += 2
    trace.rounds += 2
    # Client correction batch (1 message) + server reconstruction.
    trace.count(Op.PAILLIER_ENCRYPT, 2 * count)
    trace.bytes_client_to_server += (
        FRAME_OVERHEAD + LIST_OVERHEAD + 2 * count * sizes.paillier_ct_wire_bytes
    )
    trace.messages += 1
    trace.rounds += 1
    trace.count(Op.PAILLIER_SCALAR_MUL, count)
    trace.count(Op.PAILLIER_ADD, 3 * count)


def add_sign_test(trace: ExecutionTrace, bits: int, sizes: ProtocolSizes) -> None:
    """Costs of :func:`repro.smc.comparison.sign_test_client_learns`."""
    trace.count(Op.PAILLIER_ADD)
    add_compare_encrypted_client_learns(trace, bits, sizes)


def add_secure_argmax(
    trace: ExecutionTrace, candidates: int, bits: int, sizes: ProtocolSizes
) -> None:
    """Costs of :func:`repro.smc.argmax.secure_argmax` over
    ``candidates`` encrypted values of ``bits`` bits."""
    if candidates <= 1:
        return
    iterations = candidates - 1
    for _ in range(iterations):
        trace.count(Op.PAILLIER_ADD, 2)               # z = challenger - max + 2^l
        add_compare_encrypted_client_learns(trace, bits, sizes)
        trace.count(Op.PAILLIER_ADD, 2)               # blinding adds
        trace.count(Op.PAILLIER_RERANDOMIZE, 2)       # blinded pair
        # The blinded pair continues the comparison's final
        # server-to-client run, so it costs a message but no new round.
        trace.bytes_server_to_client += (
            FRAME_OVERHEAD + LIST_OVERHEAD + 2 * sizes.paillier_ct_wire_bytes
        )
        trace.messages += 1
        trace.count(Op.PAILLIER_ENCRYPT, 1)           # encrypted bit
        trace.count(Op.PAILLIER_RERANDOMIZE, 1)       # client refresh
        trace.bytes_client_to_server += (
            FRAME_OVERHEAD + LIST_OVERHEAD + 2 * sizes.paillier_ct_wire_bytes
        )
        trace.messages += 1
        trace.rounds += 1
        trace.count(Op.PAILLIER_SCALAR_MUL, 1)        # un-blinding correction
        trace.count(Op.PAILLIER_ADD, 2)
    # Final OT over the inverse permutation table.
    ot_bits = max(1, (candidates - 1).bit_length())
    trace.count(Op.OT_TRANSFER_1OF2, ot_bits)
    # One 4-byte index entry per candidate, shipped as a list of bytes.
    trace.bytes_server_to_client += (
        FRAME_OVERHEAD + LIST_OVERHEAD + candidates * (ELEMENT_OVERHEAD + 4)
    )
    trace.messages += 1
    trace.rounds += 1


def add_encrypt_vector(
    trace: ExecutionTrace, length: int, sizes: ProtocolSizes
) -> None:
    """Costs of the client encrypting and shipping ``length`` values."""
    if length == 0:
        return
    trace.count(Op.PAILLIER_ENCRYPT, length)
    trace.bytes_client_to_server += (
        FRAME_OVERHEAD + LIST_OVERHEAD + length * sizes.paillier_ct_wire_bytes
    )
    trace.messages += 1
    trace.rounds += 1


def add_dot_product(
    trace: ExecutionTrace, nonzero_weights: int, sizes: ProtocolSizes
) -> None:
    """Server-side costs of one encrypted dot product (ciphertexts
    already delivered).

    The accumulator is seeded from the first nonzero term, so the only
    fresh encryption happens in the degenerate all-zero-weights case;
    the plaintext offset folds in as one extra addition.
    """
    if nonzero_weights == 0:
        trace.count(Op.PAILLIER_ENCRYPT, 1)           # offset accumulator
        return
    trace.count(Op.PAILLIER_SCALAR_MUL, nonzero_weights)
    trace.count(Op.PAILLIER_ADD, nonzero_weights)     # terms - 1, + offset


# -- share-protocol builders (the shares backend's cost model) ---------------
#
# The share protocol's wire elements are *fixed-width*: a share's body is
# ``u32(width) + modulus + value`` with both integers padded to the byte
# width of the ring modulus, so element sizes depend only on the ring --
# never on the shared magnitudes -- and the formulas below are exact,
# not expectations. Triple consumption is data-independent too
# (``max(l-2, 0) + l`` per comparison), so the analytic share traces
# equal the live channel accounting byte-for-byte.


def share_wire_bytes(modulus_bits: int) -> int:
    """Wire element size of one additive share in the ``2^modulus_bits``
    ring (tag + u32 length + u32 width + modulus + value)."""
    width = modulus_bits // 8 + 1  # modulus = 2^bits is a bits+1-bit int
    return ELEMENT_OVERHEAD + 4 + 2 * width


def add_share_vector(
    trace: ExecutionTrace,
    count: int,
    modulus_bits: int,
    *,
    client_to_server: bool,
) -> None:
    """One input-sharing message: a list of ``count`` shares crossing in
    one direction (:meth:`~repro.smc.shares.ShareSession.input_client` /
    ``input_server``)."""
    if count == 0:
        return
    size = (
        FRAME_OVERHEAD + LIST_OVERHEAD + count * share_wire_bytes(modulus_bits)
    )
    if client_to_server:
        trace.bytes_client_to_server += size
    else:
        trace.bytes_server_to_client += size
    trace.messages += 1
    trace.rounds += 1


def add_share_open_batch(
    trace: ExecutionTrace, count: int, modulus_bits: int
) -> None:
    """Costs of :meth:`~repro.smc.shares.ShareSession.open_batch`: both
    parties announce their ``count``-share vectors (two messages)."""
    if count == 0:
        return
    per_direction = (
        FRAME_OVERHEAD + LIST_OVERHEAD + count * share_wire_bytes(modulus_bits)
    )
    trace.bytes_client_to_server += per_direction
    trace.bytes_server_to_client += per_direction
    trace.messages += 2
    trace.rounds += 2


def add_share_multiply_batch(
    trace: ExecutionTrace, count: int, modulus_bits: int
) -> None:
    """Costs of :meth:`~repro.smc.shares.ShareSession.multiply_batch`:
    ``count`` Beaver triples and one opening of ``2 * count`` masked
    differences."""
    if count == 0:
        return
    trace.count(Op.SHARE_MUL_TRIPLE, count)
    add_share_open_batch(trace, 2 * count, modulus_bits)


def add_share_reveal(trace: ExecutionTrace, modulus_bits: int) -> None:
    """Costs of revealing one shared value to the client: the server
    announces a single share element."""
    trace.bytes_server_to_client += FRAME_OVERHEAD + share_wire_bytes(
        modulus_bits
    )
    trace.messages += 1
    trace.rounds += 1


def add_share_dot_products(
    trace: ExecutionTrace, nonzero_total: int, modulus_bits: int
) -> None:
    """Costs of :func:`repro.smc.dotproduct.shared_dot_products` over
    ``nonzero_total`` nonzero weight terms summed across *all* rows: one
    server input-sharing message plus a single batched multiplication
    (rows with no nonzero hidden weight are free)."""
    if nonzero_total == 0:
        return
    add_share_vector(
        trace, nonzero_total, modulus_bits, client_to_server=False
    )
    add_share_multiply_batch(trace, nonzero_total, modulus_bits)


def add_share_compare(
    trace: ExecutionTrace, bits: int, modulus_bits: int
) -> None:
    """Costs of :func:`repro.smc.comparison.share_compare_shared` /
    ``_share_z_bit`` on a ``bits``-bit magnitude: one masked opening,
    ``max(bits - 2, 0)`` sequential suffix-product multiplications and
    one final batch of ``bits`` term multiplications."""
    add_share_open_batch(trace, 1, modulus_bits)
    for _ in range(max(bits - 2, 0)):
        add_share_multiply_batch(trace, 1, modulus_bits)
    add_share_multiply_batch(trace, bits, modulus_bits)


def add_share_sign_test(
    trace: ExecutionTrace, bits: int, modulus_bits: int
) -> None:
    """Costs of
    :func:`repro.smc.comparison.share_sign_test_client_learns`."""
    add_share_compare(trace, bits, modulus_bits)
    add_share_reveal(trace, modulus_bits)


def add_share_argmax(
    trace: ExecutionTrace, candidates: int, bits: int, modulus_bits: int
) -> None:
    """Costs of :func:`repro.smc.argmax.share_secure_argmax`: one share
    comparison plus a two-element multiplexing batch per tournament
    round, then a single index reveal."""
    if candidates <= 1:
        return
    for _ in range(candidates - 1):
        add_share_compare(trace, bits, modulus_bits)
        add_share_multiply_batch(trace, 2, modulus_bits)
    add_share_reveal(trace, modulus_bits)


def add_indicator_lookup(
    trace: ExecutionTrace, domain_size: int, sizes: ProtocolSizes
) -> None:
    """Server-side costs of one indicator-vector table lookup (the
    accumulator is seeded from the first nonzero table entry)."""
    trace.count(Op.PAILLIER_SCALAR_MUL, domain_size)
    trace.count(Op.PAILLIER_ADD, domain_size)


def add_leaf_selection(
    trace: ExecutionTrace,
    leaves: int,
    internal_nodes: int,
    mean_depth: float,
    sizes: ProtocolSizes,
) -> None:
    """Costs of the decision tree's blinded leaf-selection round:
    per-leaf path-cost accumulation, two blinded lists, client scan."""
    # Path-cost sums: one homomorphic add per edge on each root-leaf path.
    trace.count(Op.PAILLIER_ADD, int(round(leaves * mean_depth)))
    # Per leaf: two blinding scalar-muls, one label add, rerandomise both.
    trace.count(Op.PAILLIER_SCALAR_MUL, 2 * leaves)
    trace.count(Op.PAILLIER_ADD, leaves)
    trace.count(Op.PAILLIER_RERANDOMIZE, 2 * leaves)
    # One flat list interleaving (cost, label-slot) ciphertext pairs.
    trace.bytes_server_to_client += (
        FRAME_OVERHEAD + LIST_OVERHEAD + 2 * leaves * sizes.paillier_ct_wire_bytes
    )
    trace.messages += 1
    trace.rounds += 1
    # Client decrypts the cost list until the zero, then one label.
    trace.count(Op.PAILLIER_DECRYPT, leaves + 1)
