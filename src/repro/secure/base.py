"""Common machinery for the secure classifiers.

A secure classifier binds a trained plaintext model to a dataset schema
and supports two operations per disclosure set:

* :meth:`SecureClassifier.classify` -- actually run the protocol over a
  live :class:`~repro.smc.context.TwoPartyContext` (real crypto, real
  byte accounting) and return the label to the client;
* :meth:`SecureClassifier.estimated_trace` -- produce the analytic
  execution trace of one query, which a
  :class:`~repro.smc.cost_model.CostModel` prices in seconds. This is
  the optimizer's cost function.

The disclosure set semantics are shared: features in the set are sent
in plaintext (free), sensitive features can never be disclosed, and the
hidden set is the complement.
"""

from __future__ import annotations

import abc
import warnings
from typing import TYPE_CHECKING, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.data.schema import FeatureSpec
from repro.secure.costing import ProtocolSizes
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.secure.backends import ProtocolBackend


class SecureClassificationError(Exception):
    """Raised on schema violations or illegal disclosure sets."""


#: One-time flag for the missing-backend deprecation warning, so legacy
#: scripts that classify in a loop see exactly one notice.
_no_backend_warned = False

#: Cached default backend for legacy contexts and analytic estimates.
_default_backend = None


def default_backend() -> "ProtocolBackend":
    """The process-wide default :class:`PaillierBackend` instance, used
    for analytic estimates when no backend is specified."""
    global _default_backend
    if _default_backend is None:
        from repro.secure.backends import PaillierBackend

        _default_backend = PaillierBackend()
    return _default_backend


def resolve_backend(ctx: TwoPartyContext) -> "ProtocolBackend":
    """The protocol backend a live query should run on.

    Contexts built by :func:`repro.smc.context.make_context` carry the
    backend selected by ``SessionConfig.protocol_backend``. Contexts
    constructed directly (the pre-backend API) have none; they keep
    working on the Paillier path but draw a one-time
    :class:`DeprecationWarning` steering callers to the config field.
    """
    global _no_backend_warned
    backend = getattr(ctx, "protocol_backend", None)
    if backend is not None:
        return backend
    if not _no_backend_warned:
        warnings.warn(
            "classifying over a context without a protocol backend is "
            "deprecated; build contexts via make_context(config="
            "SessionConfig(protocol_backend=...)) instead of constructing "
            "TwoPartyContext directly -- defaulting to the Paillier backend",
            DeprecationWarning,
            stacklevel=3,
        )
        _no_backend_warned = True
    return default_backend()


class SecureClassifier(abc.ABC):
    """Base class: disclosure-set handling shared by all protocols.

    Parameters
    ----------
    features:
        The dataset's feature specs (order matches model columns).
    sizes:
        Key-size parameters for analytic traffic estimates.
    """

    def __init__(
        self,
        features: Sequence[FeatureSpec],
        sizes: ProtocolSizes = ProtocolSizes(),
    ) -> None:
        self.features = list(features)
        self.sizes = sizes
        self._sensitive = frozenset(
            i for i, f in enumerate(self.features) if f.sensitive
        )

    @property
    def n_features(self) -> int:
        """Number of feature columns the model consumes."""
        return len(self.features)

    def validate_disclosure(self, disclosure_set: Iterable[int]) -> FrozenSet[int]:
        """Check a disclosure set against the schema; returns it frozen.

        Sensitive features *may* appear here: the protocol layer is
        policy-free, and disclosing a sensitive attribute is simply
        priced at maximal risk by the privacy model. Whether that is
        acceptable is the privacy budget's decision, not the wire
        protocol's.
        """
        disclosed = frozenset(int(i) for i in disclosure_set)
        for index in disclosed:
            if not 0 <= index < self.n_features:
                raise SecureClassificationError(
                    f"feature index {index} outside 0..{self.n_features - 1}"
                )
        return disclosed

    def partition(
        self, disclosure_set: Iterable[int]
    ) -> Tuple[List[int], List[int]]:
        """Split columns into ``(disclosed, hidden)``, both sorted."""
        disclosed = self.validate_disclosure(disclosure_set)
        hidden = [i for i in range(self.n_features) if i not in disclosed]
        return sorted(disclosed), hidden

    def validate_row(self, row: np.ndarray) -> np.ndarray:
        """Shape/domain-check one feature row."""
        row = np.asarray(row)
        if row.ndim != 1 or len(row) != self.n_features:
            raise SecureClassificationError(
                f"expected a row of {self.n_features} features, "
                f"got shape {row.shape}"
            )
        for index, spec in enumerate(self.features):
            value = int(row[index])
            if not 0 <= value < spec.domain_size:
                raise SecureClassificationError(
                    f"feature {spec.name!r} value {value} outside "
                    f"[0, {spec.domain_size})"
                )
        return row

    @abc.abstractmethod
    def classify(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> int:
        """Run the live protocol; the client learns the predicted label."""

    @abc.abstractmethod
    def estimated_trace(self, disclosure_set: Iterable[int] = ()) -> ExecutionTrace:
        """Analytic per-query execution trace for the given disclosure."""
