"""Secure decision-tree evaluation with disclosure-based pruning.

This is where selective disclosure buys the most: a node testing a
*disclosed* feature is resolved by the server in plaintext, discarding
an entire subtree. Only the residual tree -- whose internal nodes all
test hidden features -- is evaluated cryptographically:

1. the client sends plaintext values of disclosed features; the server
   prunes the tree with them;
2. the client Paillier-encrypts each hidden feature used by the
   residual tree (once, reused across nodes);
3. per residual internal node ``(f, t)`` the parties run the encrypted
   comparison, leaving the server an encryption of the branch bit
   ``b = (x_f > t)``;
4. the server forms, per leaf, the encrypted *path cost* -- the number
   of branch bits inconsistent with that leaf's root path (linear in
   the ``[b]``'s) -- multiplicatively blinds every cost with a fresh
   uniform element of ``Z_n`` (perfect blinding: a non-zero cost is
   coprime with the RSA modulus), pairs it with a blinded label slot
   ``[rho' * cost + label]``, permutes the leaf order and ships both
   lists;
5. exactly one cost decrypts to zero -- the true path; the client reads
   the label from the paired slot and learns nothing else; the server
   never sees which leaf fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.classifiers.decision_tree import DecisionTreeClassifier, TreeNode
from repro.crypto.paillier import PaillierCiphertext
from repro.secure.base import SecureClassificationError, SecureClassifier
from repro.secure.costing import (
    FRAME_OVERHEAD,
    LIST_OVERHEAD,
    SMALL_INT_BYTES,
    ProtocolSizes,
    add_compare_encrypted_batch,
    add_encrypt_vector,
    add_leaf_selection,
)
from repro.smc.comparison import compare_encrypted_many
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import ExecutionTrace, Op, protocol_entry


@dataclass
class _ExpectedShape:
    """Expected residual-tree statistics under a disclosure set."""

    comparisons: float = 0.0
    leaves: float = 0.0
    depth_mass: float = 0.0  # sum over leaves of P(active) * hidden-depth

    @property
    def mean_depth(self) -> float:
        """Expected hidden-edge depth of an active leaf."""
        return self.depth_mass / self.leaves if self.leaves > 0 else 0.0


class SecureDecisionTreeClassifier(SecureClassifier):
    """Two-party evaluation of a fitted CART tree.

    Parameters
    ----------
    model:
        A fitted :class:`DecisionTreeClassifier`.
    features:
        Schema of the feature columns.
    feature_marginals:
        Optional per-feature categorical marginals (list of probability
        vectors) used by the analytic cost estimate to weight pruning
        outcomes; uniform marginals are assumed when omitted.
    sizes:
        Key sizes for analytic traffic estimates.
    """

    def __init__(
        self,
        model: DecisionTreeClassifier,
        features,
        feature_marginals: Optional[Sequence[np.ndarray]] = None,
        sizes: ProtocolSizes = ProtocolSizes(),
    ) -> None:
        super().__init__(features, sizes)
        if model.n_features != self.n_features:
            raise SecureClassificationError(
                f"model has {model.n_features} features, schema has "
                f"{self.n_features}"
            )
        self.model = model
        if feature_marginals is None:
            self.feature_marginals = [
                np.full(spec.domain_size, 1.0 / spec.domain_size)
                for spec in self.features
            ]
        else:
            if len(feature_marginals) != self.n_features:
                raise SecureClassificationError(
                    f"{len(feature_marginals)} marginals for "
                    f"{self.n_features} features"
                )
            self.feature_marginals = [
                np.asarray(m, dtype=float) / np.asarray(m, dtype=float).sum()
                for m in feature_marginals
            ]

    # -- plaintext reference --------------------------------------------------

    def predict_quantized(self, row: np.ndarray) -> int:
        """Tree evaluation is already integer-exact; delegate."""
        return self.model.predict_one(self.validate_row(row))

    # -- pruning ----------------------------------------------------------------

    def pruned_tree(self, row: np.ndarray, disclosed: Iterable[int]) -> TreeNode:
        """Residual tree after resolving disclosed-feature nodes with
        the row's values."""
        disclosed_set = set(disclosed)

        def prune(node: TreeNode) -> TreeNode:
            if node.is_leaf:
                return node
            assert node.feature is not None and node.threshold is not None
            assert node.left is not None and node.right is not None
            if node.feature in disclosed_set:
                if int(row[node.feature]) <= node.threshold:
                    return prune(node.left)
                return prune(node.right)
            return TreeNode(
                feature=node.feature,
                threshold=node.threshold,
                left=prune(node.left),
                right=prune(node.right),
            )

        return prune(self.model.root)

    # -- live protocol -------------------------------------------------------------

    @protocol_entry(span="classify.tree")
    def classify(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> int:
        row = self.validate_row(row)
        disclosed, hidden = self.partition(disclosure_set)
        ctx.channel.reset_direction()

        if disclosed:
            ctx.channel.client_sends([int(row[i]) for i in disclosed])
        residual = self.pruned_tree(row, disclosed)

        if residual.is_leaf:
            # Everything resolved in plaintext; the server returns the
            # prediction directly (the prediction is the protocol's
            # output, so nothing extra leaks).
            assert residual.label is not None
            return int(ctx.channel.server_sends(int(residual.label)))

        # Client encrypts each hidden feature the residual tree uses
        # (one engine batch).
        used_features = sorted({n.feature for n in _internal_nodes(residual)})
        ciphertexts = ctx.client_encrypt_batch(
            [int(row[f]) for f in used_features]
        )
        ciphertexts = ctx.channel.client_sends(ciphertexts)
        encrypted: Dict[int, PaillierCiphertext] = dict(
            zip(used_features, ciphertexts)
        )

        # One encrypted comparison per residual internal node, all
        # instances batched into a single four-message exchange:
        # b = (x_f >= t + 1)  i.e. "go right". A common bit width (the
        # widest hidden feature) keeps the batch uniform.
        nodes = _internal_nodes(residual)
        bits = max(self.features[f].bit_length for f in used_features)
        z_batch: List[PaillierCiphertext] = []
        for node in nodes:
            assert node.feature is not None and node.threshold is not None
            ctx.trace.count(Op.PAILLIER_ADD, 2)
            z_batch.append(
                encrypted[node.feature] - (node.threshold + 1) + (1 << bits)
            )
        bit_ciphertexts = compare_encrypted_many(ctx, z_batch, bits)
        branch_bits: Dict[int, PaillierCiphertext] = {
            id(node): bit for node, bit in zip(nodes, bit_ciphertexts)
        }

        # Per-leaf encrypted path costs (zero iff the leaf's path holds).
        leaves: List[Tuple[PaillierCiphertext, int]] = []
        zero = ctx.server_encrypt(0)

        def collect(node: TreeNode, cost: PaillierCiphertext) -> None:
            if node.is_leaf:
                assert node.label is not None
                leaves.append((cost, int(node.label)))
                return
            assert node.left is not None and node.right is not None
            bit = branch_bits[id(node)]
            # Left edge requires b = 0 -> mismatch term b.
            ctx.trace.count(Op.PAILLIER_ADD, 1)
            collect(node.left, cost + bit)
            # Right edge requires b = 1 -> mismatch term (1 - b).
            ctx.trace.count(Op.PAILLIER_ADD, 2)
            ctx.trace.count(Op.PAILLIER_SCALAR_MUL, 1)
            collect(node.right, cost + ((bit * -1) + 1))

        collect(residual, zero)

        # Blind, permute, ship -- all three bulk shapes (unsigned scalar
        # multiplications, label adds, re-randomisations) run as engine
        # batches.
        modulus = ctx.paillier.public_key.n
        costs = [cost for cost, _ in leaves]
        labels = [label for _, label in leaves]
        rhos: List[int] = []
        rho_labels: List[int] = []
        for _ in leaves:
            rhos.append(1 + ctx.server_rng.randbelow(modulus - 1))
            rho_labels.append(1 + ctx.server_rng.randbelow(modulus - 1))
        masked_costs = ctx.scalar_mul_batch(costs, rhos, signed=False)
        label_slots = ctx.scalar_mul_batch(costs, rho_labels, signed=False)
        ctx.trace.count(Op.PAILLIER_ADD, len(leaves))
        label_slots = [slot + label for slot, label in zip(label_slots, labels)]
        refreshed = ctx.rerandomize_batch(
            [ct for pair in zip(masked_costs, label_slots) for ct in pair]
        )
        blinded: List[Tuple[PaillierCiphertext, PaillierCiphertext]] = [
            (refreshed[2 * i], refreshed[2 * i + 1])
            for i in range(len(leaves))
        ]
        ctx.server_rng.shuffle(blinded)
        ctx.channel.reset_direction()
        payload = ctx.channel.server_sends(
            [ct for pair in blinded for ct in pair]
        )

        # Client: batch-decrypt the cost list (CRT fast path), then read
        # the label paired with the single zero cost.
        raw_costs = ctx.client_decrypt_batch(payload[0::2], signed=False)
        for pair_index, raw in enumerate(raw_costs):
            # Designed disclosure: the client learns which permuted path
            # cost is zero -- that index selects its own classification
            # output.
            # repro: allow[branch-on-secret]
            if raw == 0:
                ctx.trace.count(Op.PAILLIER_DECRYPT)
                return int(
                    ctx.paillier.private_key.decrypt_raw(
                        payload[2 * pair_index + 1]
                    )
                )
        raise SecureClassificationError(
            "no leaf path matched; residual tree evaluation is inconsistent"
        )

    # -- analytic cost ---------------------------------------------------------------

    def estimated_trace(self, disclosure_set: Iterable[int] = ()) -> ExecutionTrace:
        disclosed, hidden = self.partition(disclosure_set)
        disclosed_set = set(disclosed)
        trace = ExecutionTrace(label=f"tree|hidden={len(hidden)}")

        shape = _ExpectedShape()
        self._expected_shape(
            self.model.root, 1.0, 0.0, disclosed_set, shape
        )

        if disclosed:
            trace.bytes_client_to_server += (
                FRAME_OVERHEAD + LIST_OVERHEAD
                + SMALL_INT_BYTES * len(disclosed)
            )
            trace.messages += 1
            trace.rounds += 1
        if shape.comparisons < 1e-9:
            # Fully resolved in plaintext: a single label message.
            trace.bytes_server_to_client += FRAME_OVERHEAD + SMALL_INT_BYTES
            trace.messages += 1
            trace.rounds += 1
            return trace

        used_hidden = sorted(
            {n.feature for n in _internal_nodes(self.model.root)
             if n.feature not in disclosed_set}
        )
        add_encrypt_vector(trace, len(used_hidden), self.sizes)

        batch_bits = (
            max(self.features[f].bit_length for f in used_hidden)
            if used_hidden
            else 1
        )
        comparisons = max(int(round(shape.comparisons)), 1)
        trace.count(Op.PAILLIER_ADD, 2 * comparisons)
        add_compare_encrypted_batch(trace, comparisons, batch_bits, self.sizes)

        leaves = max(int(round(shape.leaves)), 2)
        add_leaf_selection(
            trace, leaves, comparisons, shape.mean_depth, self.sizes
        )
        return trace

    def _expected_shape(
        self,
        node: TreeNode,
        probability: float,
        hidden_depth: float,
        disclosed: set,
        shape: _ExpectedShape,
    ) -> None:
        """Propagate activation probability through the tree.

        Disclosed nodes split probability by the feature's marginal;
        hidden nodes keep both children fully active (the residual tree
        contains them both) and cost one comparison.
        """
        if node.is_leaf:
            shape.leaves += probability
            shape.depth_mass += probability * hidden_depth
            return
        assert node.feature is not None and node.threshold is not None
        assert node.left is not None and node.right is not None
        if node.feature in disclosed:
            marginal = self.feature_marginals[node.feature]
            p_left = float(marginal[: node.threshold + 1].sum())
            self._expected_shape(
                node.left, probability * p_left, hidden_depth, disclosed, shape
            )
            self._expected_shape(
                node.right, probability * (1.0 - p_left), hidden_depth,
                disclosed, shape,
            )
            return
        shape.comparisons += probability
        self._expected_shape(
            node.left, probability, hidden_depth + 1, disclosed, shape
        )
        self._expected_shape(
            node.right, probability, hidden_depth + 1, disclosed, shape
        )


def _internal_nodes(root: TreeNode) -> List[TreeNode]:
    """All decision nodes of a tree, depth-first pre-order."""
    if root.is_leaf:
        return []
    assert root.left is not None and root.right is not None
    return [root] + _internal_nodes(root.left) + _internal_nodes(root.right)
