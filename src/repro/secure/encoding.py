"""Fixed-point encoding of model parameters.

Paillier and DGK work over integers, so model weights and log-
probabilities are scaled by ``2^precision_bits`` and rounded once at
model-export time. Both the secure path and the quantised plaintext
reference (used by the accuracy-parity experiment E2) share the same
encoder, which is what makes their outputs bit-identical.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

DEFAULT_PRECISION_BITS = 10


class EncodingError(Exception):
    """Raised on invalid precision or out-of-range encodings."""


class FixedPointEncoder:
    """Scales floats to integers by ``2^precision_bits``.

    Parameters
    ----------
    precision_bits:
        Binary digits kept after the point. 10 bits keeps score
        rankings intact for every model in the evaluation while keeping
        comparison bit-lengths small (protocol cost is linear in them).
    """

    def __init__(self, precision_bits: int = DEFAULT_PRECISION_BITS) -> None:
        if not 1 <= precision_bits <= 48:
            raise EncodingError(
                f"precision_bits must be in [1, 48], got {precision_bits}"
            )
        self.precision_bits = precision_bits
        self.scale = 1 << precision_bits

    def encode(self, value: float) -> int:
        """Round one float to the fixed-point grid."""
        if not np.isfinite(value):
            raise EncodingError(f"cannot encode non-finite value {value!r}")
        return int(round(float(value) * self.scale))

    def encode_vector(self, values: Iterable[float]) -> List[int]:
        """Encode a vector of floats."""
        return [self.encode(v) for v in values]

    def encode_matrix(self, values: np.ndarray) -> List[List[int]]:
        """Encode a 2-d array row-wise."""
        array = np.asarray(values, dtype=float)
        if array.ndim != 2:
            raise EncodingError(f"expected a 2-d array, got shape {array.shape}")
        return [self.encode_vector(row) for row in array]

    def decode(self, encoded: int) -> float:
        """Back to float (testing/diagnostics)."""
        return encoded / self.scale


def magnitude_bits(values: Sequence[int]) -> int:
    """Bits needed for the largest absolute value in ``values``."""
    peak = max((abs(int(v)) for v in values), default=0)
    return max(1, peak.bit_length())


def score_bound(weight_rows: Sequence[Sequence[int]],
                biases: Sequence[int],
                max_feature_values: Sequence[int]) -> int:
    """Upper bound on ``|w_c . x + b_c|`` over classes and inputs.

    The secure comparison's bit-length parameter comes from this bound;
    protocol cost is linear in it, so it is computed exactly rather
    than padded.
    """
    bound = 0
    for row, bias in zip(weight_rows, biases):
        row_bound = abs(int(bias)) + sum(
            abs(int(w)) * int(m) for w, m in zip(row, max_feature_values)
        )
        bound = max(bound, row_bound)
    return max(bound, 1)
