"""Protocol backends: pluggable online-phase engines for classification.

The secure classifiers describe *what* a query computes (feature
transfer, per-class affine scores, a comparison or argmax, possibly a
revealed score); a :class:`ProtocolBackend` decides *how* those steps
execute cryptographically:

* :class:`PaillierBackend` -- the paper's protocol stack: Paillier
  ciphertexts cross the wire, dot products are homomorphic
  multi-exponentiations, comparisons run the DGK subprotocol. All the
  work is online.
* :class:`SharesBackend` -- an additive secret-sharing online phase:
  features and weights are input-shared, every multiplication consumes
  a precomputed Beaver triple and every comparison a precomputed mask
  from an offline :class:`~repro.crypto.triples.TripleStore`, so the
  online phase is integer ring arithmetic plus fixed-width share
  openings -- orders of magnitude cheaper per query, at the price of
  offline triple provisioning.

Backends are selected by name through :data:`PROTOCOL_BACKENDS` (the
``protocol_backend`` field of :class:`repro.core.session.SessionConfig`,
``--backend`` on the CLI) and attached to the session context by
:func:`repro.smc.context.make_context`; protocol code obtains one via
:func:`repro.secure.base.resolve_backend` and never touches a keyring
directly.

Every backend also carries the *cost-model hooks* (``trace_*``): the
analytic mirror of its live protocol, so the disclosure optimizer can
price a query under either backend without running crypto.

Example (the full surface, no network needed)::

    from repro.secure.backends import make_protocol_backend
    backend = make_protocol_backend("shares")
    from repro.smc.context import make_context
    from repro.core.session import SessionConfig
    ctx = make_context(config=SessionConfig(seed=1, paillier_bits=256))
    state = backend.begin_query(ctx, magnitude_bits=16)
    shared = backend.encrypt_features(state, [3, 1])
    scores = backend.dot_products(state, shared, [[2, 0], [0, 5]], [10, -4])
    assert backend.sign_test_client_learns(state, scores) in (0, 1)
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Sequence

from repro.crypto.beaver import ComparisonMask, TrustedDealer
from repro.crypto.rand import DeterministicRandom
from repro.crypto.triples import TripleStore
from repro.secure.costing import (
    FRAME_OVERHEAD,
    ProtocolSizes,
    add_dot_product,
    add_encrypt_vector,
    add_secure_argmax,
    add_share_argmax,
    add_share_dot_products,
    add_share_reveal,
    add_share_sign_test,
    add_share_vector,
    add_sign_test,
)
from repro.smc import argmax as _argmax
from repro.smc import comparison as _comparison
from repro.smc import dotproduct as _dotproduct
from repro.smc import shares as _shares
from repro.smc import wire
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import ExecutionTrace, Op
from repro.smc.shares import ShareSession, modulus_bits_for


class BackendError(Exception):
    """Raised for unknown backend names or misused query states."""


@dataclass
class QueryState:
    """One classification query's backend-side state.

    ``session`` is populated by the shares backend only; the Paillier
    backend keeps all its state in the context's keyring.
    """

    ctx: TwoPartyContext
    magnitude_bits: int
    session: Optional[ShareSession] = None


class ProtocolBackend(abc.ABC):
    """Interface every online-phase protocol engine implements.

    Live-protocol methods (each operates on the :class:`QueryState`
    returned by :meth:`begin_query`):

    * :meth:`encrypt_features` -- move the client's hidden feature
      values into the backend's protected representation, crossing the
      wire once;
    * :meth:`dot_products` -- one protected affine score per weight
      row, folding public per-row offsets in for free;
    * :meth:`sign_test_client_learns` -- binary decision: the client
      learns ``score_1 >= score_0`` and nothing else;
    * :meth:`argmax_client_learns` -- multi-class decision: the client
      learns the index of the maximum score and nothing else;
    * :meth:`reveal_score_to_client` -- regression output: the client
      learns the raw fixed-point score.

    :meth:`prepare_offline` moves precomputable work (triple dealing,
    encryption pools) out of the online path; the ``trace_*`` hooks are
    the analytic cost model matching the live methods exactly.

    Backends are selected by name through
    :class:`repro.core.session.SessionConfig`; classifier code never
    branches on the backend, it only calls this interface. Example::

        ctx = make_context(config=SessionConfig(protocol_backend="shares"))
        backend = ctx.protocol_backend
        state = backend.begin_query(ctx, magnitude_bits=32)
        protected = backend.encrypt_features(state, [3, 1, 4])
        scores = backend.dot_products(state, protected, [[2, -1, 5]], [7])
        print(backend.reveal_score_to_client(state, scores[0]))
    """

    #: Registry name of the backend (the ``--backend`` value).
    name: ClassVar[str] = ""

    # -- live online phase ---------------------------------------------------

    @abc.abstractmethod
    def begin_query(
        self, ctx: TwoPartyContext, magnitude_bits: int
    ) -> QueryState:
        """Open one query's state; ``magnitude_bits`` bounds every
        score magnitude the query will compare or reveal."""

    @abc.abstractmethod
    def encrypt_features(
        self, state: QueryState, values: Sequence[int]
    ) -> List[Any]:
        """Client-side: protect the hidden feature values and ship them."""

    @abc.abstractmethod
    def dot_products(
        self,
        state: QueryState,
        vector: Sequence[Any],
        weight_rows: Sequence[Sequence[int]],
        offsets: Sequence[int],
    ) -> List[Any]:
        """Server-side: one protected ``<w, x> + offset`` per row."""

    @abc.abstractmethod
    def sign_test_client_learns(
        self, state: QueryState, scores: Sequence[Any]
    ) -> int:
        """Binary decision bit ``scores[1] >= scores[0]``, to the client."""

    @abc.abstractmethod
    def argmax_client_learns(
        self, state: QueryState, scores: Sequence[Any]
    ) -> int:
        """Index of the maximum score, to the client."""

    @abc.abstractmethod
    def reveal_score_to_client(self, state: QueryState, score: Any) -> int:
        """Open one protected (signed) score to the client."""

    # -- offline phase -------------------------------------------------------

    def prepare_offline(
        self,
        ctx: TwoPartyContext,
        magnitude_bits: int,
        *,
        triples: int = 0,
        comparisons: int = 0,
        low_water: int = 0,
    ) -> None:
        """Run precomputation for upcoming queries (default: nothing).

        Backends with no offline phase ignore this; the shares backend
        deals ``triples`` Beaver triples and ``comparisons`` comparison
        masks into its store and, when ``low_water`` is positive, keeps
        both stocked from a background thread.
        """

    def offline_trace(self) -> Optional[ExecutionTrace]:
        """Accumulated offline-phase traffic, or ``None`` if the
        backend has no offline phase."""
        return None

    # -- analytic cost hooks -------------------------------------------------

    @abc.abstractmethod
    def trace_encrypt_vector(
        self,
        trace: ExecutionTrace,
        length: int,
        sizes: ProtocolSizes,
        magnitude_bits: int,
    ) -> None:
        """Analytic mirror of :meth:`encrypt_features`."""

    @abc.abstractmethod
    def trace_dot_products(
        self,
        trace: ExecutionTrace,
        nonzero_per_row: Sequence[int],
        sizes: ProtocolSizes,
        magnitude_bits: int,
    ) -> None:
        """Analytic mirror of :meth:`dot_products` over rows with the
        given nonzero hidden-weight counts."""

    @abc.abstractmethod
    def trace_sign_test(
        self, trace: ExecutionTrace, bits: int, sizes: ProtocolSizes
    ) -> None:
        """Analytic mirror of :meth:`sign_test_client_learns`."""

    @abc.abstractmethod
    def trace_argmax(
        self,
        trace: ExecutionTrace,
        candidates: int,
        bits: int,
        sizes: ProtocolSizes,
    ) -> None:
        """Analytic mirror of :meth:`argmax_client_learns`."""

    @abc.abstractmethod
    def trace_reveal_score(
        self, trace: ExecutionTrace, sizes: ProtocolSizes, magnitude_bits: int
    ) -> None:
        """Analytic mirror of :meth:`reveal_score_to_client`."""


class PaillierBackend(ProtocolBackend):
    """The paper's Paillier/DGK protocol stack as a backend.

    A thin adapter: every method delegates to the existing protocol
    functions (:mod:`repro.smc.dotproduct`, :mod:`repro.smc.comparison`,
    :mod:`repro.smc.argmax`) with unchanged transcripts, and every
    ``trace_*`` hook to the existing analytic builders -- so traces and
    byte accounting are identical to the pre-backend code paths.

    ``rng`` is accepted for registry uniformity and ignored: all
    Paillier randomness comes from the session context's key material
    and party rngs.

    This is the default backend -- an unconfigured session runs on it.
    Example::

        ctx = make_context(config=SessionConfig(seed=7))
        print(ctx.protocol_backend.name)   # "paillier"
        label = deployed.classify(ctx, row)
    """

    name = "paillier"

    def __init__(self, rng: Optional[DeterministicRandom] = None) -> None:
        del rng

    def begin_query(
        self, ctx: TwoPartyContext, magnitude_bits: int
    ) -> QueryState:
        return QueryState(ctx=ctx, magnitude_bits=magnitude_bits)

    def encrypt_features(
        self, state: QueryState, values: Sequence[int]
    ) -> List[Any]:
        return _dotproduct.encrypt_feature_vector(state.ctx, values)

    def dot_products(
        self,
        state: QueryState,
        vector: Sequence[Any],
        weight_rows: Sequence[Sequence[int]],
        offsets: Sequence[int],
    ) -> List[Any]:
        return _dotproduct.batched_encrypted_dot_products(
            state.ctx, vector, weight_rows, offsets
        )

    def sign_test_client_learns(
        self, state: QueryState, scores: Sequence[Any]
    ) -> int:
        ctx = state.ctx
        difference = ctx.add(scores[1], -scores[0])
        return _comparison.sign_test_client_learns(
            ctx, difference, state.magnitude_bits
        )

    def argmax_client_learns(
        self, state: QueryState, scores: Sequence[Any]
    ) -> int:
        # Shift signed scores into [0, 2^bits) for the argmax protocol.
        ctx = state.ctx
        shift = 1 << (state.magnitude_bits - 1)
        shifted = [ctx.add(score, shift) for score in scores]
        return _argmax.secure_argmax(ctx, shifted, state.magnitude_bits)

    def reveal_score_to_client(self, state: QueryState, score: Any) -> int:
        ctx = state.ctx
        ctx.channel.reset_direction()
        delivered = ctx.channel.server_sends(ctx.rerandomize(score))
        return ctx.client_decrypt(delivered)

    # -- analytic hooks --

    def trace_encrypt_vector(self, trace, length, sizes, magnitude_bits):
        add_encrypt_vector(trace, length, sizes)

    def trace_dot_products(self, trace, nonzero_per_row, sizes, magnitude_bits):
        for nonzero in nonzero_per_row:
            add_dot_product(trace, nonzero, sizes)

    def trace_sign_test(self, trace, bits, sizes):
        add_sign_test(trace, bits, sizes)

    def trace_argmax(self, trace, candidates, bits, sizes):
        add_secure_argmax(trace, candidates, bits, sizes)

    def trace_reveal_score(self, trace, sizes, magnitude_bits):
        trace.count(Op.PAILLIER_RERANDOMIZE)
        trace.count(Op.PAILLIER_DECRYPT)
        trace.bytes_server_to_client += (
            FRAME_OVERHEAD + sizes.paillier_ct_wire_bytes
        )
        trace.messages += 1
        trace.rounds += 1


class SharesBackend(ProtocolBackend):
    """Secret-sharing online phase over precomputed Beaver material.

    One :class:`~repro.crypto.triples.TripleStore` per ring modulus,
    created lazily from the first query needing that ring and shared by
    all subsequent queries -- the offline stockpile survives across
    per-request contexts. The dealer's rng is a mode-preserving fork of
    the session rng (or of ``rng`` when injected), so a system-entropy
    session deals from system entropy too.

    Distribution honesty: every freshly dealt party-1 bundle round-trips
    through the canonical wire codec (``TAG_TRIPLE`` / ``TAG_SHARE``
    elements) via the store's ``distribute`` hook, and the measured
    bytes accumulate in :meth:`offline_trace` -- the offline phase is
    charged with the same honesty as the online one.

    Stock the store ahead of the online phase with
    :meth:`~ProtocolBackend.prepare_offline` (sized by
    :meth:`query_requirements`); unstocked queries still work, dealing
    inline and counting ``triples.misses``. Example::

        backend = SharesBackend()
        ctx = make_context(config=SessionConfig(protocol_backend="shares"),
                           protocol_backend=backend)
        need = backend.query_requirements(
            nonzero_total=12, n_classes=2, bits=32)
        backend.prepare_offline(ctx, 32, triples=need["triples"],
                                comparisons=need["comparisons"])
        label = secure_model.classify(ctx, row)   # online: ring ops only
    """

    name = "shares"

    def __init__(self, rng: Optional[DeterministicRandom] = None) -> None:
        self._rng = rng
        self._stores: Dict[int, TripleStore] = {}
        self._stores_lock = threading.Lock()
        self._offline_trace = ExecutionTrace(label="shares|offline")
        self._offline_lock = threading.Lock()
        self._codec = wire.WireCodec()

    # -- store management --

    def store_for(
        self, ctx: TwoPartyContext, magnitude_bits: int
    ) -> TripleStore:
        """The (shared, lazily created) triple store backing queries at
        this magnitude under the context's statistical security."""
        modulus_bits = modulus_bits_for(
            magnitude_bits, ctx.statistical_security_bits
        )
        with self._stores_lock:
            store = self._stores.get(modulus_bits)
            if store is None:
                source = self._rng if self._rng is not None else ctx.server_rng
                dealer = TrustedDealer(
                    rng=source.fork(), modulus=1 << modulus_bits
                )
                store = TripleStore(
                    dealer,
                    kappa=ctx.statistical_security_bits,
                    distribute=self._distribute,
                )
                self._stores[modulus_bits] = store
            return store

    def _distribute(self, kind: str, bundles: list) -> list:
        """Push a dealt party-1 batch through the wire codec, charging
        the offline trace with the measured bytes (each party's bundle
        has the same fixed-width size, so both directions are charged;
        the two deliveries are independent, hence one round)."""
        if kind == "masks":
            payload = [
                (m.bit_length, m.r, m.r_high, list(m.r_low_bits))
                for m in bundles
            ]
        else:
            payload = list(bundles)
        encoded = wire.encode(payload)
        delivered = self._codec.decode(encoded)
        with self._offline_lock:
            size = FRAME_OVERHEAD + len(encoded)
            self._offline_trace.bytes_client_to_server += size
            self._offline_trace.bytes_server_to_client += size
            self._offline_trace.messages += 2
            self._offline_trace.rounds += 1
        if kind == "masks":
            return [
                ComparisonMask(
                    bit_length=bits,
                    r=r,
                    r_high=r_high,
                    r_low_bits=tuple(low_bits),
                )
                for bits, r, r_high, low_bits in delivered
            ]
        return list(delivered)

    # -- offline phase --

    def prepare_offline(
        self,
        ctx: TwoPartyContext,
        magnitude_bits: int,
        *,
        triples: int = 0,
        comparisons: int = 0,
        low_water: int = 0,
    ) -> None:
        store = self.store_for(ctx, magnitude_bits)
        if triples or comparisons:
            store.refill(
                triples=triples, masks=comparisons, mask_bits=magnitude_bits
            )
        if low_water > 0:
            store.start_background_refill(
                low_water,
                mask_bits=magnitude_bits,
                mask_low_water=low_water,
            )

    def offline_trace(self) -> ExecutionTrace:
        return self._offline_trace

    def close(self) -> None:
        """Stop any background refiller threads."""
        with self._stores_lock:
            stores = list(self._stores.values())
        for store in stores:
            store.stop_background_refill()

    @staticmethod
    def query_requirements(
        nonzero_total: int, n_classes: int, bits: int
    ) -> Dict[str, int]:
        """Exact offline material one query consumes: ``triples`` and
        ``comparisons`` (masks), for provisioning and benchmarks.

        ``n_classes`` of 0 or 1 means a regression/score-reveal query
        (no comparison); triple consumption is data-independent, so
        these counts are exact, not bounds.
        """
        per_compare = max(bits - 2, 0) + bits
        if n_classes == 2:
            comparisons = 1
            multiplex = 0
        elif n_classes > 2:
            comparisons = n_classes - 1
            multiplex = 2 * (n_classes - 1)
        else:
            comparisons = 0
            multiplex = 0
        return {
            "triples": nonzero_total + comparisons * per_compare + multiplex,
            "comparisons": comparisons,
        }

    # -- live online phase --

    def begin_query(
        self, ctx: TwoPartyContext, magnitude_bits: int
    ) -> QueryState:
        session = ShareSession(ctx, self.store_for(ctx, magnitude_bits))
        return QueryState(
            ctx=ctx, magnitude_bits=magnitude_bits, session=session
        )

    @staticmethod
    def _session(state: QueryState) -> ShareSession:
        if state.session is None:
            raise BackendError(
                "query state was not opened by the shares backend"
            )
        return state.session

    def encrypt_features(
        self, state: QueryState, values: Sequence[int]
    ) -> List[Any]:
        return _dotproduct.share_feature_vector(self._session(state), values)

    def dot_products(
        self,
        state: QueryState,
        vector: Sequence[Any],
        weight_rows: Sequence[Sequence[int]],
        offsets: Sequence[int],
    ) -> List[Any]:
        return _dotproduct.shared_dot_products(
            self._session(state), vector, weight_rows, offsets
        )

    def sign_test_client_learns(
        self, state: QueryState, scores: Sequence[Any]
    ) -> int:
        return _comparison.share_sign_test_client_learns(
            self._session(state),
            scores[1] - scores[0],
            state.magnitude_bits,
        )

    def argmax_client_learns(
        self, state: QueryState, scores: Sequence[Any]
    ) -> int:
        return _argmax.share_secure_argmax(
            self._session(state), scores, state.magnitude_bits
        )

    def reveal_score_to_client(self, state: QueryState, score: Any) -> int:
        return _shares.share_reveal_to_client(
            self._session(state), score, signed=True
        )

    # -- analytic hooks --

    def _modulus_bits(self, magnitude_bits: int, sizes: ProtocolSizes) -> int:
        return modulus_bits_for(
            magnitude_bits, sizes.statistical_security_bits
        )

    def trace_encrypt_vector(self, trace, length, sizes, magnitude_bits):
        add_share_vector(
            trace,
            length,
            self._modulus_bits(magnitude_bits, sizes),
            client_to_server=True,
        )

    def trace_dot_products(self, trace, nonzero_per_row, sizes, magnitude_bits):
        add_share_dot_products(
            trace,
            sum(nonzero_per_row),
            self._modulus_bits(magnitude_bits, sizes),
        )

    def trace_sign_test(self, trace, bits, sizes):
        add_share_sign_test(trace, bits, self._modulus_bits(bits, sizes))

    def trace_argmax(self, trace, candidates, bits, sizes):
        add_share_argmax(
            trace, candidates, bits, self._modulus_bits(bits, sizes)
        )

    def trace_reveal_score(self, trace, sizes, magnitude_bits):
        add_share_reveal(trace, self._modulus_bits(magnitude_bits, sizes))


#: Registry of protocol backends by CLI / config name. Mirrored by the
#: ``PROTOCOL_BACKENDS`` literal in :mod:`repro.core.session` (kept in
#: sync by a unit test) so the config layer needs no crypto imports.
PROTOCOL_BACKENDS: Dict[str, type] = {
    PaillierBackend.name: PaillierBackend,
    SharesBackend.name: SharesBackend,
}


def make_protocol_backend(
    name: str, rng: Optional[DeterministicRandom] = None
) -> ProtocolBackend:
    """Instantiate a registered backend by name.

    Example::

        backend = make_protocol_backend("paillier")
        assert backend.name == "paillier"
    """
    try:
        backend_cls = PROTOCOL_BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown protocol backend {name!r}; "
            f"known: {', '.join(sorted(PROTOCOL_BACKENDS))}"
        ) from None
    return backend_cls(rng=rng)
