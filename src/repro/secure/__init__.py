"""Secure classifier protocols with partial disclosure.

Each class wraps a trained plaintext model from
:mod:`repro.classifiers` and evaluates it in the two-party setting of
Bost et al. (NDSS 2015): the client holds the feature vector and all
decryption keys; the server holds the model and computes over
ciphertexts. The reproduction's twist -- the paper's contribution -- is
the *disclosure set*: features the client reveals in plaintext before
the SMC phase, shrinking the encrypted computation:

* :class:`~repro.secure.secure_linear.SecureLinearClassifier` --
  encrypted per-class dot products over hidden features only (disclosed
  features fold into the plaintext offset), then a sign test (binary)
  or secure argmax.
* :class:`~repro.secure.secure_naive_bayes.SecureNaiveBayesClassifier`
  -- encrypted indicator-vector lookups per hidden feature, plaintext
  table additions per disclosed feature, then secure argmax.
* :class:`~repro.secure.secure_tree.SecureDecisionTreeClassifier` --
  the tree is first *pruned* with the disclosed values (whole subtrees
  fall away), then the residual tree is evaluated with one encrypted
  comparison per node and a blinded leaf-selection round.

Every classifier also provides an analytic
:meth:`~repro.secure.base.SecureClassifier.estimated_trace`, the cost
function the disclosure optimizer minimises.
"""

from repro.secure.base import SecureClassifier
from repro.secure.encoding import FixedPointEncoder
from repro.secure.secure_linear import SecureLinearClassifier
from repro.secure.secure_naive_bayes import SecureNaiveBayesClassifier
from repro.secure.secure_forest import SecureRandomForestClassifier
from repro.secure.secure_regression import SecureRegression
from repro.secure.secure_tree import SecureDecisionTreeClassifier

__all__ = [
    "FixedPointEncoder",
    "SecureClassifier",
    "SecureDecisionTreeClassifier",
    "SecureLinearClassifier",
    "SecureNaiveBayesClassifier",
    "SecureRandomForestClassifier",
    "SecureRegression",
]
