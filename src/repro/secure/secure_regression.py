"""Secure linear regression with partial disclosure.

The paper's service really predicts a *continuous* dose; this protocol
serves it: the client encrypts hidden feature values, the server folds
in its (fixed-point) weight vector plus the plaintext contribution of
disclosed features, re-randomises and returns a single ciphertext; the
client decrypts and de-scales. The protocol's *output* is the dose --
the very value the Fredrikson attack exploits -- which is why the
pipeline treats model output as a disclosure of its own (see
:mod:`repro.privacy.inversion`).

Costs: one Paillier encryption per hidden feature on the client, one
scalar multiplication per hidden feature on the server, two rounds.
Disclosing everything degenerates to the server answering in plaintext.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.classifiers.regression import RidgeRegression
from repro.secure.base import (
    SecureClassificationError,
    SecureClassifier,
    default_backend,
    resolve_backend,
)
from repro.secure.costing import (
    ELEMENT_OVERHEAD,
    FRAME_OVERHEAD,
    LIST_OVERHEAD,
    SMALL_INT_BYTES,
    ProtocolSizes,
)
from repro.secure.encoding import FixedPointEncoder, score_bound
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import ExecutionTrace, protocol_entry


class SecureRegression(SecureClassifier):
    """Two-party evaluation of a fitted ridge regression.

    Parameters
    ----------
    model:
        A fitted :class:`RidgeRegression`.
    features:
        Schema of the feature columns.
    encoder:
        Fixed-point encoder; the returned dose is exact on its grid.
    sizes:
        Key sizes for analytic traffic estimates.
    """

    def __init__(
        self,
        model: RidgeRegression,
        features,
        encoder: FixedPointEncoder = FixedPointEncoder(),
        sizes: ProtocolSizes = ProtocolSizes(),
    ) -> None:
        super().__init__(features, sizes)
        if model.n_features != self.n_features:
            raise SecureClassificationError(
                f"model has {model.n_features} features, schema has "
                f"{self.n_features}"
            )
        self.model = model
        self.encoder = encoder
        self.int_weights: List[int] = encoder.encode_vector(model.weights)
        self.int_intercept: int = encoder.encode(model.intercept)
        max_values = [spec.domain_size - 1 for spec in self.features]
        self.score_bits = score_bound(
            [self.int_weights], [self.int_intercept], max_values
        ).bit_length() + 1

    # -- plaintext reference -------------------------------------------------

    def quantized_prediction(self, row: np.ndarray) -> float:
        """The fixed-point dose the protocol computes."""
        row = self.validate_row(row)
        score = self.int_intercept + sum(
            w * int(x) for w, x in zip(self.int_weights, row)
        )
        return self.encoder.decode(score)

    # -- live protocol --------------------------------------------------------

    def classify(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> int:
        """Protocol entry point (integer fixed-point output).

        Prefer :meth:`predict_secure`, which de-scales to a float; this
        method exists to satisfy the :class:`SecureClassifier`
        interface and returns the raw fixed-point integer.
        """
        return self._secure_score(ctx, row, disclosure_set)

    def predict_secure(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> float:
        """Run the live protocol; the client learns the dose."""
        return self.encoder.decode(self._secure_score(ctx, row, disclosure_set))

    @protocol_entry(span="classify.regression_score")
    def _secure_score(
        self, ctx: TwoPartyContext, row: np.ndarray, disclosure_set
    ) -> int:
        row = self.validate_row(row)
        disclosed, hidden = self.partition(disclosure_set)
        ctx.channel.reset_direction()

        if disclosed:
            ctx.channel.client_sends([int(row[i]) for i in disclosed])
        offset = self.int_intercept + sum(
            self.int_weights[i] * int(row[i]) for i in disclosed
        )

        if not hidden:
            # Fully disclosed: plaintext answer, one message.
            return int(ctx.channel.server_sends(offset))

        backend = resolve_backend(ctx)
        state = backend.begin_query(ctx, self.score_bits)
        protected = backend.encrypt_features(
            state, [int(row[i]) for i in hidden]
        )
        score = backend.dot_products(
            state,
            protected,
            [[self.int_weights[i] for i in hidden]],
            [offset],
        )[0]
        return backend.reveal_score_to_client(state, score)

    # -- analytic cost ----------------------------------------------------------

    def estimated_trace(
        self,
        disclosure_set: Iterable[int] = (),
        *,
        backend=None,
    ) -> ExecutionTrace:
        if backend is None:
            backend = default_backend()
        disclosed, hidden = self.partition(disclosure_set)
        trace = ExecutionTrace(
            label=f"regression|{backend.name}|hidden={len(hidden)}"
        )
        if disclosed:
            trace.bytes_client_to_server += (
                FRAME_OVERHEAD + LIST_OVERHEAD
                + SMALL_INT_BYTES * len(disclosed)
            )
            trace.messages += 1
            trace.rounds += 1
        if not hidden:
            # Plaintext fixed-point dose: one integer of a few bytes.
            trace.bytes_server_to_client += FRAME_OVERHEAD + ELEMENT_OVERHEAD + 4
            trace.messages += 1
            trace.rounds += 1
            return trace
        backend.trace_encrypt_vector(
            trace, len(hidden), self.sizes, self.score_bits
        )
        nonzero = sum(1 for i in hidden if self.int_weights[i] != 0)
        backend.trace_dot_products(
            trace, [nonzero], self.sizes, self.score_bits
        )
        backend.trace_reveal_score(trace, self.sizes, self.score_bits)
        return trace
