"""Secure linear regression with partial disclosure.

The paper's service really predicts a *continuous* dose; this protocol
serves it: the client encrypts hidden feature values, the server folds
in its (fixed-point) weight vector plus the plaintext contribution of
disclosed features, re-randomises and returns a single ciphertext; the
client decrypts and de-scales. The protocol's *output* is the dose --
the very value the Fredrikson attack exploits -- which is why the
pipeline treats model output as a disclosure of its own (see
:mod:`repro.privacy.inversion`).

Costs: one Paillier encryption per hidden feature on the client, one
scalar multiplication per hidden feature on the server, two rounds.
Disclosing everything degenerates to the server answering in plaintext.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.classifiers.regression import RidgeRegression
from repro.secure.base import SecureClassificationError, SecureClassifier
from repro.secure.costing import (
    ELEMENT_OVERHEAD,
    FRAME_OVERHEAD,
    LIST_OVERHEAD,
    SMALL_INT_BYTES,
    ProtocolSizes,
    add_dot_product,
    add_encrypt_vector,
)
from repro.secure.encoding import FixedPointEncoder
from repro.smc.context import TwoPartyContext
from repro.smc.dotproduct import encrypt_feature_vector, encrypted_dot_product
from repro.smc.protocol import ExecutionTrace, protocol_entry


class SecureRegression(SecureClassifier):
    """Two-party evaluation of a fitted ridge regression.

    Parameters
    ----------
    model:
        A fitted :class:`RidgeRegression`.
    features:
        Schema of the feature columns.
    encoder:
        Fixed-point encoder; the returned dose is exact on its grid.
    sizes:
        Key sizes for analytic traffic estimates.
    """

    def __init__(
        self,
        model: RidgeRegression,
        features,
        encoder: FixedPointEncoder = FixedPointEncoder(),
        sizes: ProtocolSizes = ProtocolSizes(),
    ) -> None:
        super().__init__(features, sizes)
        if model.n_features != self.n_features:
            raise SecureClassificationError(
                f"model has {model.n_features} features, schema has "
                f"{self.n_features}"
            )
        self.model = model
        self.encoder = encoder
        self.int_weights: List[int] = encoder.encode_vector(model.weights)
        self.int_intercept: int = encoder.encode(model.intercept)

    # -- plaintext reference -------------------------------------------------

    def quantized_prediction(self, row: np.ndarray) -> float:
        """The fixed-point dose the protocol computes."""
        row = self.validate_row(row)
        score = self.int_intercept + sum(
            w * int(x) for w, x in zip(self.int_weights, row)
        )
        return self.encoder.decode(score)

    # -- live protocol --------------------------------------------------------

    def classify(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> int:
        """Protocol entry point (integer fixed-point output).

        Prefer :meth:`predict_secure`, which de-scales to a float; this
        method exists to satisfy the :class:`SecureClassifier`
        interface and returns the raw fixed-point integer.
        """
        return self._secure_score(ctx, row, disclosure_set)

    def predict_secure(
        self,
        ctx: TwoPartyContext,
        row: np.ndarray,
        disclosure_set: Iterable[int] = (),
    ) -> float:
        """Run the live protocol; the client learns the dose."""
        return self.encoder.decode(self._secure_score(ctx, row, disclosure_set))

    @protocol_entry(span="classify.regression_score")
    def _secure_score(
        self, ctx: TwoPartyContext, row: np.ndarray, disclosure_set
    ) -> int:
        row = self.validate_row(row)
        disclosed, hidden = self.partition(disclosure_set)
        ctx.channel.reset_direction()

        if disclosed:
            ctx.channel.client_sends([int(row[i]) for i in disclosed])
        offset = self.int_intercept + sum(
            self.int_weights[i] * int(row[i]) for i in disclosed
        )

        if not hidden:
            # Fully disclosed: plaintext answer, one message.
            return int(ctx.channel.server_sends(offset))

        encrypted_hidden = encrypt_feature_vector(
            ctx, [int(row[i]) for i in hidden]
        )
        score = encrypted_dot_product(
            ctx,
            encrypted_hidden,
            [self.int_weights[i] for i in hidden],
            plaintext_offset=offset,
        )
        ctx.channel.reset_direction()
        delivered = ctx.channel.server_sends(ctx.rerandomize(score))
        return ctx.client_decrypt(delivered)

    # -- analytic cost ----------------------------------------------------------

    def estimated_trace(self, disclosure_set: Iterable[int] = ()) -> ExecutionTrace:
        disclosed, hidden = self.partition(disclosure_set)
        trace = ExecutionTrace(label=f"regression|hidden={len(hidden)}")
        if disclosed:
            trace.bytes_client_to_server += (
                FRAME_OVERHEAD + LIST_OVERHEAD
                + SMALL_INT_BYTES * len(disclosed)
            )
            trace.messages += 1
            trace.rounds += 1
        if not hidden:
            # Plaintext fixed-point dose: one integer of a few bytes.
            trace.bytes_server_to_client += FRAME_OVERHEAD + ELEMENT_OVERHEAD + 4
            trace.messages += 1
            trace.rounds += 1
            return trace
        add_encrypt_vector(trace, len(hidden), self.sizes)
        nonzero = sum(1 for i in hidden if self.int_weights[i] != 0)
        add_dot_product(trace, nonzero, self.sizes)
        from repro.smc.protocol import Op

        trace.count(Op.PAILLIER_RERANDOMIZE)
        trace.count(Op.PAILLIER_DECRYPT)
        trace.bytes_server_to_client += (
            FRAME_OVERHEAD + self.sizes.paillier_ct_wire_bytes
        )
        trace.messages += 1
        trace.rounds += 1
        return trace
