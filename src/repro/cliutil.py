"""Shared CLI conventions: ``--format {text,json}`` and report emission.

Every ``python -m repro`` subcommand offers the same two report formats
(matching the convention ``lint`` introduced): human-oriented text by
default, or a machine-readable JSON document with ``--format json``.
This module owns the argument definition and the single emission path so
the subcommands cannot drift apart.

Deliberately stdlib-only and import-light: both :mod:`repro.cli` and
:mod:`repro.analysis.cli` use it, so it must not import either.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, TextIO

FORMATS = ("text", "json")


def add_format_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--format`` option to a subcommand parser."""
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="report format (default text)",
    )


def add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--metrics`` option to a subcommand parser."""
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="enable telemetry and write the metrics snapshot (spans, "
             "counters, histograms) as JSON to PATH ('-' for stdout)",
    )


def emit(
    fmt: str,
    *,
    text: str,
    payload: Any,
    stream: Optional[TextIO] = None,
) -> None:
    """Write one report in the requested format.

    ``text`` is the human rendering; ``payload`` is the JSON-able
    document behind it. Exactly one of them is emitted.
    """
    out = stream if stream is not None else sys.stdout
    if fmt == "json":
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(text)
        if not text.endswith("\n"):
            out.write("\n")
