"""Ridge linear regression -- the continuous dosing model.

The IWPC equation the paper's scenario is built on predicts a
*continuous* weekly dose; the classification task is its bucketed view.
This trainer fits the linear model by regularised normal equations
(numpy only) so the secure-regression protocol can serve exact doses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import ClassifierError, validate_row


class RidgeRegression:
    """Linear least squares with L2 regularisation.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (the intercept is unpenalised).
    """

    def __init__(self, l2: float = 1e-3) -> None:
        if l2 < 0:
            raise ClassifierError(f"l2 must be non-negative, got {l2}")
        self.l2 = l2
        self._weights: Optional[np.ndarray] = None
        self._intercept: float = 0.0
        self._n_features: int = -1

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        """Solve the regularised normal equations."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ClassifierError(
                f"expected a 2-d feature matrix, got shape {features.shape}"
            )
        if len(features) != len(targets):
            raise ClassifierError(
                f"{len(features)} rows vs {len(targets)} targets"
            )
        if len(features) == 0:
            raise ClassifierError("cannot fit on an empty dataset")

        n, d = features.shape
        augmented = np.column_stack([features, np.ones(n)])
        penalty = self.l2 * np.eye(d + 1)
        penalty[d, d] = 0.0  # do not penalise the intercept
        gram = augmented.T @ augmented + penalty
        solution = np.linalg.solve(gram, augmented.T @ targets)
        self._weights = solution[:d]
        self._intercept = float(solution[d])
        self._n_features = d
        return self

    @property
    def weights(self) -> np.ndarray:
        """Fitted weight vector."""
        self._check_fitted()
        assert self._weights is not None
        return self._weights

    @property
    def intercept(self) -> float:
        """Fitted intercept."""
        self._check_fitted()
        return self._intercept

    @property
    def n_features(self) -> int:
        """Number of features the model was fitted on."""
        self._check_fitted()
        return self._n_features

    def predict_one(self, row: np.ndarray) -> float:
        """Predicted target for one row."""
        row = validate_row(row, self.n_features).astype(float)
        return float(self.weights @ row + self._intercept)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Vectorised prediction."""
        features = np.asarray(features, dtype=float)
        self._check_fitted()
        return features @ self.weights + self._intercept

    def _check_fitted(self) -> None:
        if self._n_features < 0:
            raise ClassifierError("RidgeRegression must be fitted before use")


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute prediction error."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ClassifierError("shape mismatch or empty arrays in MAE")
    return float(np.abs(y_true - y_pred).mean())


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true, y_pred = np.asarray(y_true, float), np.asarray(y_pred, float)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ClassifierError("shape mismatch or empty arrays in R^2")
    residual = ((y_true - y_pred) ** 2).sum()
    total = ((y_true - y_true.mean()) ** 2).sum()
    if total == 0:
        return 0.0
    return float(1.0 - residual / total)
