"""CART decision tree with Gini impurity and ordinal threshold splits.

Every internal node tests ``x[feature] <= threshold`` over integer-coded
features, which maps one-to-one onto the secure comparison protocol:
each node on the (hidden-feature) evaluation frontier costs one
encrypted comparison. The tree structure is exposed publicly
(:class:`TreeNode`) because the secure evaluator and the
disclosure-based pruning both walk it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.classifiers.base import Classifier, ClassifierError, validate_row


@dataclass
class TreeNode:
    """One node of a fitted tree.

    Internal nodes carry ``feature``/``threshold`` and both children;
    leaves carry only ``label``.
    """

    feature: Optional[int] = None
    threshold: Optional[int] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    label: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node carries a class label."""
        return self.label is not None

    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def count_internal(self) -> int:
        """Number of decision nodes in this subtree."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + self.left.count_internal() + self.right.count_internal()

    def count_leaves(self) -> int:
        """Number of leaves in this subtree."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.count_leaves() + self.right.count_leaves()

    def leaves(self) -> List["TreeNode"]:
        """All leaves of this subtree, left to right."""
        if self.is_leaf:
            return [self]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()


class DecisionTreeClassifier(Classifier):
    """Greedy CART trainer.

    Parameters
    ----------
    max_depth:
        Depth cap (root at depth 0).
    min_samples_split:
        Do not split nodes with fewer samples.
    min_impurity_decrease:
        Minimum Gini improvement for a split to be kept.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 4,
        min_impurity_decrease: float = 1e-7,
        candidate_features: Optional[List[int]] = None,
    ) -> None:
        if max_depth < 0:
            raise ClassifierError(f"max_depth must be non-negative: {max_depth}")
        if min_samples_split < 2:
            raise ClassifierError(
                f"min_samples_split must be at least 2: {min_samples_split}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease
        # Restricting split candidates enables random-forest feature
        # subsampling without copying the data matrix.
        self.candidate_features = (
            list(candidate_features) if candidate_features is not None else None
        )
        self._root: Optional[TreeNode] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree greedily by Gini impurity."""
        features = np.asarray(features)
        labels = np.asarray(labels)
        self._register_training_shape(features, labels)
        self._root = self._grow(features, labels, depth=0)
        return self

    @property
    def root(self) -> TreeNode:
        """Root of the fitted tree."""
        self._check_fitted()
        assert self._root is not None
        return self._root

    def predict_one(self, row: np.ndarray) -> int:
        """Route one row from root to a leaf."""
        row = validate_row(row, self.n_features)
        node = self.root
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            assert node.left is not None and node.right is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
        assert node.label is not None
        return int(node.label)

    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int) -> TreeNode:
        if (
            depth >= self.max_depth
            or len(labels) < self.min_samples_split
            or len(np.unique(labels)) == 1
        ):
            return TreeNode(label=_majority_label(labels))

        split = self._best_split(features, labels)
        if split is None:
            return TreeNode(label=_majority_label(labels))
        feature, threshold, gain = split
        if gain < self.min_impurity_decrease:
            return TreeNode(label=_majority_label(labels))

        mask = features[:, feature] <= threshold
        return TreeNode(
            feature=feature,
            threshold=int(threshold),
            left=self._grow(features[mask], labels[mask], depth + 1),
            right=self._grow(features[~mask], labels[~mask], depth + 1),
        )

    def _best_split(
        self, features: np.ndarray, labels: np.ndarray
    ) -> Optional[Tuple[int, int, float]]:
        """Best ``(feature, threshold, gain)`` over all candidate splits."""
        parent_impurity = _gini(labels)
        n = len(labels)
        best: Optional[Tuple[int, int, float]] = None
        candidates = (
            self.candidate_features
            if self.candidate_features is not None
            else range(features.shape[1])
        )
        for feature in candidates:
            column = features[:, feature]
            for threshold in np.unique(column)[:-1]:
                mask = column <= threshold
                left, right = labels[mask], labels[~mask]
                if len(left) == 0 or len(right) == 0:
                    continue
                weighted = (
                    len(left) / n * _gini(left) + len(right) / n * _gini(right)
                )
                gain = parent_impurity - weighted
                if best is None or gain > best[2]:
                    best = (feature, int(threshold), gain)
        return best


def _gini(labels: np.ndarray) -> float:
    """Gini impurity of a label vector."""
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    proportions = counts / counts.sum()
    return float(1.0 - (proportions**2).sum())


def _majority_label(labels: np.ndarray) -> int:
    """Most frequent label (lowest label wins ties, deterministically)."""
    values, counts = np.unique(labels, return_counts=True)
    return int(values[int(np.argmax(counts))])
