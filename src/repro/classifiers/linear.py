"""Multinomial logistic regression -- the *hyperplane* classifier.

Trained with full-batch gradient descent on the softmax cross-entropy
with L2 regularisation. Prediction is ``argmax_c w_c . x + b_c``, which
is exactly the form the secure hyperplane protocol evaluates: encrypted
dot products per class followed by a secure argmax (or a single sign
test in the binary case).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import Classifier, ClassifierError, validate_row


class LogisticRegressionClassifier(Classifier):
    """Softmax regression with gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient step size.
    iterations:
        Number of full-batch gradient steps.
    l2:
        L2 regularisation strength on the weights (not the biases).
    standardize:
        Standardise features to zero mean / unit variance before
        training; the learned affine map is folded back into the weights
        so prediction operates on raw inputs (required for the secure
        path, which sees raw integer-coded features).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        iterations: int = 400,
        l2: float = 1e-3,
        standardize: bool = True,
    ) -> None:
        if learning_rate <= 0:
            raise ClassifierError(f"learning rate must be positive: {learning_rate}")
        if iterations <= 0:
            raise ClassifierError(f"iterations must be positive: {iterations}")
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self.standardize = standardize
        self._weights: Optional[np.ndarray] = None  # (n_classes, n_features)
        self._biases: Optional[np.ndarray] = None  # (n_classes,)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionClassifier":
        """Train with full-batch gradient descent."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        self._register_training_shape(features, labels)

        if self.standardize:
            mean = features.mean(axis=0)
            scale = features.std(axis=0)
            scale[scale == 0.0] = 1.0
        else:
            mean = np.zeros(features.shape[1])
            scale = np.ones(features.shape[1])
        standardized = (features - mean) / scale

        n_samples = len(features)
        n_classes = len(self._classes)
        class_index = {label: i for i, label in enumerate(self._classes)}
        one_hot = np.zeros((n_samples, n_classes))
        for row, label in enumerate(labels):
            one_hot[row, class_index[label]] = 1.0

        weights = np.zeros((n_classes, features.shape[1]))
        biases = np.zeros(n_classes)
        for _ in range(self.iterations):
            logits = standardized @ weights.T + biases
            probabilities = _softmax(logits)
            error = probabilities - one_hot
            gradient_w = error.T @ standardized / n_samples + self.l2 * weights
            gradient_b = error.mean(axis=0)
            weights -= self.learning_rate * gradient_w
            biases -= self.learning_rate * gradient_b

        # Fold the standardisation back: w.(x - mu)/sigma + b
        # = (w/sigma).x + (b - w.mu/sigma).
        self._weights = weights / scale
        self._biases = biases - (weights / scale) @ mean
        return self

    @property
    def weights(self) -> np.ndarray:
        """Per-class weight rows on *raw* (unstandardised) inputs."""
        self._check_fitted()
        assert self._weights is not None
        return self._weights

    @property
    def biases(self) -> np.ndarray:
        """Per-class intercepts on raw inputs."""
        self._check_fitted()
        assert self._biases is not None
        return self._biases

    def decision_scores(self, row: np.ndarray) -> np.ndarray:
        """Per-class affine scores ``w_c . x + b_c`` for one row."""
        row = validate_row(row, self.n_features).astype(float)
        return self.weights @ row + self.biases

    def predict_one(self, row: np.ndarray) -> int:
        """Argmax over per-class scores."""
        scores = self.decision_scores(row)
        return int(self._classes[int(np.argmax(scores))])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Vectorised argmax prediction."""
        features = np.asarray(features, dtype=float)
        self._check_fitted()
        scores = features @ self.weights.T + self.biases
        return self._classes[np.argmax(scores, axis=1)]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax class probabilities, ``(n_samples, n_classes)``."""
        features = np.asarray(features, dtype=float)
        self._check_fitted()
        return _softmax(features @ self.weights.T + self.biases)


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
