"""Discretization of continuous features into integer codes.

The privacy machinery (joint distributions, Bayesian adversary) and the
naive-Bayes / tree protocols operate over discrete domains; continuous
covariates such as age or weight are binned here. Both equal-width and
quantile binning are supported; bin edges learned on training data are
reused at prediction time so the plain and secure paths see identical
codes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class DiscretizationError(Exception):
    """Raised on invalid binning configuration or unfitted use."""


class Discretizer:
    """Per-column binner mapping floats to codes ``0..bins-1``.

    Parameters
    ----------
    n_bins:
        Number of output categories per column.
    strategy:
        ``"uniform"`` for equal-width bins over the training range, or
        ``"quantile"`` for (approximately) equal-population bins.
    """

    def __init__(self, n_bins: int = 4, strategy: str = "uniform") -> None:
        if n_bins < 2:
            raise DiscretizationError(f"need at least 2 bins, got {n_bins}")
        if strategy not in ("uniform", "quantile"):
            raise DiscretizationError(
                f"unknown strategy {strategy!r}; expected 'uniform' or 'quantile'"
            )
        self.n_bins = n_bins
        self.strategy = strategy
        self._edges: Optional[List[np.ndarray]] = None

    def fit(self, features: np.ndarray) -> "Discretizer":
        """Learn bin edges per column."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise DiscretizationError(
                f"expected a 2-d matrix, got shape {features.shape}"
            )
        self._edges = []
        for column in features.T:
            if self.strategy == "uniform":
                low, high = column.min(), column.max()
                if low == high:
                    high = low + 1.0
                edges = np.linspace(low, high, self.n_bins + 1)[1:-1]
            else:
                quantiles = np.linspace(0, 100, self.n_bins + 1)[1:-1]
                edges = np.unique(np.percentile(column, quantiles))
            self._edges.append(edges)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map each column into its learned codes (clipped to range)."""
        if self._edges is None:
            raise DiscretizationError("transform called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[1] != len(self._edges):
            raise DiscretizationError(
                f"expected shape (*, {len(self._edges)}), got {features.shape}"
            )
        coded = np.zeros(features.shape, dtype=np.int64)
        for index, edges in enumerate(self._edges):
            coded[:, index] = np.searchsorted(edges, features[:, index], side="right")
        return coded

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one step."""
        return self.fit(features).transform(features)

    @property
    def bin_edges(self) -> List[np.ndarray]:
        """Learned interior edges per column."""
        if self._edges is None:
            raise DiscretizationError("bin_edges requested before fit")
        return self._edges

    def domain_sizes(self) -> List[int]:
        """Number of codes each column can produce."""
        if self._edges is None:
            raise DiscretizationError("domain_sizes requested before fit")
        return [len(edges) + 1 for edges in self._edges]
