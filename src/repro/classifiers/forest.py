"""Random forest -- bagged CART trees with feature subsampling.

Ensembles are the natural next model family for secure classification
(the original secure-classifier papers list them as future work); the
plaintext trainer here feeds
:class:`repro.secure.secure_forest.SecureRandomForestClassifier`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.classifiers.base import Classifier, ClassifierError, validate_row
from repro.classifiers.decision_tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_trees:
        Ensemble size (odd values avoid binary-vote ties).
    max_depth:
        Depth cap per tree.
    feature_fraction:
        Fraction of features each tree may split on (sampled without
        replacement per tree).
    bootstrap:
        Sample training rows with replacement per tree.
    seed:
        Randomness for bagging and feature subsampling.
    """

    def __init__(
        self,
        n_trees: int = 15,
        max_depth: int = 6,
        feature_fraction: float = 0.7,
        bootstrap: bool = True,
        min_samples_split: int = 4,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ClassifierError(f"need at least one tree, got {n_trees}")
        if not 0.0 < feature_fraction <= 1.0:
            raise ClassifierError(
                f"feature_fraction must be in (0, 1], got {feature_fraction}"
            )
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.feature_fraction = feature_fraction
        self.bootstrap = bootstrap
        self.min_samples_split = min_samples_split
        self.seed = seed
        self.trees: List[DecisionTreeClassifier] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        """Grow the ensemble."""
        features = np.asarray(features)
        labels = np.asarray(labels)
        self._register_training_shape(features, labels)
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = features.shape
        subset_size = max(1, int(round(self.feature_fraction * n_features)))

        self.trees = []
        for _ in range(self.n_trees):
            if self.bootstrap:
                picks = rng.integers(0, n_samples, n_samples)
            else:
                picks = np.arange(n_samples)
            candidates = sorted(
                rng.choice(n_features, size=subset_size, replace=False).tolist()
            )
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                candidate_features=candidates,
            )
            tree.fit(features[picks], labels[picks])
            self.trees.append(tree)
        return self

    def vote_counts(self, row: np.ndarray) -> np.ndarray:
        """Per-class vote counts over the ensemble, in class order."""
        row = validate_row(row, self.n_features)
        counts = np.zeros(len(self._classes), dtype=int)
        index_of = {int(c): i for i, c in enumerate(self._classes)}
        for tree in self.trees:
            counts[index_of[tree.predict_one(row)]] += 1
        return counts

    def predict_one(self, row: np.ndarray) -> int:
        """Majority vote (first maximal class on ties)."""
        counts = self.vote_counts(row)
        return int(self._classes[int(np.argmax(counts))])
