"""Evaluation metrics for the classifier benchmarks."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class MetricsError(Exception):
    """Raised on shape mismatches between predictions and labels."""


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise MetricsError(
            f"label/prediction shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise MetricsError("cannot score empty predictions")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Square confusion matrix over the union of observed labels.

    Rows are true labels, columns predictions, both in sorted label
    order.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index: Dict[int, int] = {int(label): i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[int(t)], index[int(p)]] += 1
    return matrix


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(y_true, y_pred)
    f1_scores = []
    for class_pos in range(matrix.shape[0]):
        true_positive = matrix[class_pos, class_pos]
        predicted = matrix[:, class_pos].sum()
        actual = matrix[class_pos, :].sum()
        precision = true_positive / predicted if predicted else 0.0
        recall = true_positive / actual if actual else 0.0
        if precision + recall == 0.0:
            f1_scores.append(0.0)
        else:
            f1_scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(f1_scores))


def error_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """``1 - accuracy``."""
    return 1.0 - accuracy(y_true, y_pred)
