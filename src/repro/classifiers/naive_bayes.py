"""Categorical naive Bayes with Laplace smoothing.

Prediction is ``argmax_c [log P(c) + sum_f log P(x_f = v | c)]`` over
integer-coded categorical features. The log-probability tables are the
model the secure protocol consumes: each hidden feature's contribution
is fetched through an encrypted indicator-vector lookup and the class
scores feed the secure argmax.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.classifiers.base import Classifier, ClassifierError, validate_row


class NaiveBayesClassifier(Classifier):
    """Discrete naive Bayes.

    Parameters
    ----------
    alpha:
        Laplace smoothing pseudo-count (per feature value per class).
    domain_sizes:
        Optional per-feature domain sizes. When omitted they are
        inferred as ``max(code) + 1`` from the training data; passing
        them explicitly guards against prediction-time codes unseen in
        training.
    """

    def __init__(
        self, alpha: float = 1.0, domain_sizes: Optional[Sequence[int]] = None
    ) -> None:
        if alpha <= 0:
            raise ClassifierError(f"smoothing alpha must be positive: {alpha}")
        self.alpha = alpha
        self._declared_domains = list(domain_sizes) if domain_sizes else None
        self._log_priors: Optional[np.ndarray] = None
        self._log_likelihoods: List[np.ndarray] = []
        self._domain_sizes: List[int] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "NaiveBayesClassifier":
        """Estimate smoothed class-conditional tables from counts."""
        features = np.asarray(features)
        labels = np.asarray(labels)
        if not np.issubdtype(features.dtype, np.integer):
            raise ClassifierError(
                "naive Bayes requires integer-coded categorical features; "
                f"got dtype {features.dtype}"
            )
        self._register_training_shape(features, labels)
        if features.min() < 0:
            raise ClassifierError("feature codes must be non-negative")

        n_features = features.shape[1]
        if self._declared_domains is not None:
            if len(self._declared_domains) != n_features:
                raise ClassifierError(
                    f"{len(self._declared_domains)} declared domains for "
                    f"{n_features} features"
                )
            self._domain_sizes = list(self._declared_domains)
        else:
            self._domain_sizes = [
                int(features[:, f].max()) + 1 for f in range(n_features)
            ]
        for f, size in enumerate(self._domain_sizes):
            if features[:, f].max() >= size:
                raise ClassifierError(
                    f"feature {f} has code {features[:, f].max()} outside "
                    f"declared domain of size {size}"
                )

        n_classes = len(self._classes)
        class_counts = np.array(
            [(labels == c).sum() for c in self._classes], dtype=float
        )
        self._log_priors = np.log(class_counts / class_counts.sum())

        self._log_likelihoods = []
        for f in range(n_features):
            size = self._domain_sizes[f]
            table = np.full((n_classes, size), self.alpha, dtype=float)
            for class_pos, c in enumerate(self._classes):
                rows = features[labels == c, f]
                values, counts = np.unique(rows, return_counts=True)
                table[class_pos, values] += counts
            table /= table.sum(axis=1, keepdims=True)
            self._log_likelihoods.append(np.log(table))
        return self

    @property
    def log_priors(self) -> np.ndarray:
        """``log P(c)`` in class order."""
        self._check_fitted()
        assert self._log_priors is not None
        return self._log_priors

    @property
    def log_likelihoods(self) -> List[np.ndarray]:
        """Per-feature ``(n_classes, domain)`` tables of ``log P(v|c)``."""
        self._check_fitted()
        return self._log_likelihoods

    @property
    def domain_sizes(self) -> List[int]:
        """Per-feature category counts the model was fitted with."""
        self._check_fitted()
        return self._domain_sizes

    def joint_log_scores(self, row: np.ndarray) -> np.ndarray:
        """Per-class unnormalised log-posterior for one row."""
        row = validate_row(row, self.n_features)
        scores = self.log_priors.copy()
        for f, value in enumerate(row):
            value = int(value)
            if not 0 <= value < self._domain_sizes[f]:
                raise ClassifierError(
                    f"feature {f} code {value} outside domain "
                    f"[0, {self._domain_sizes[f]})"
                )
            scores += self._log_likelihoods[f][:, value]
        return scores

    def predict_one(self, row: np.ndarray) -> int:
        """Argmax over joint log scores."""
        scores = self.joint_log_scores(row)
        return int(self._classes[int(np.argmax(scores))])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Normalised posteriors, ``(n_samples, n_classes)``."""
        features = np.asarray(features)
        self._check_fitted()
        out = np.zeros((len(features), len(self._classes)))
        for i, row in enumerate(features):
            scores = self.joint_log_scores(row)
            scores -= scores.max()
            probabilities = np.exp(scores)
            out[i] = probabilities / probabilities.sum()
        return out
