"""Common classifier interface.

Keeping the interface tiny (fit / predict / predict_one) lets the secure
wrappers in :mod:`repro.secure` treat every model family uniformly, and
the accuracy-parity benchmark iterate over families generically.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np


class ClassifierError(Exception):
    """Raised on invalid classifier usage (unfitted predict, bad shapes)."""


class Classifier(abc.ABC):
    """Abstract base for the plaintext classifiers.

    Feature matrices are ``(n_samples, n_features)`` arrays. The secure
    protocols require integer-coded categorical features, and the data
    substrate always delivers those; the linear model additionally
    accepts float features for standalone use.
    """

    _n_features: int = -1
    _classes: np.ndarray

    @abc.abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "Classifier":
        """Train on ``features``/``labels``; returns ``self``."""

    @abc.abstractmethod
    def predict_one(self, row: np.ndarray) -> int:
        """Predict the class label of a single feature row."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Vectorised prediction; default loops over :meth:`predict_one`."""
        features = np.asarray(features)
        self._check_fitted()
        if features.ndim != 2:
            raise ClassifierError(
                f"expected a 2-d feature matrix, got shape {features.shape}"
            )
        return np.array([self.predict_one(row) for row in features])

    @property
    def classes(self) -> np.ndarray:
        """Sorted class labels seen during fitting."""
        self._check_fitted()
        return self._classes

    @property
    def n_features(self) -> int:
        """Number of features the model was fitted on."""
        self._check_fitted()
        return self._n_features

    def _check_fitted(self) -> None:
        if self._n_features < 0:
            raise ClassifierError(
                f"{type(self).__name__} must be fitted before use"
            )

    def _register_training_shape(
        self, features: np.ndarray, labels: np.ndarray
    ) -> None:
        """Validate shapes and remember feature count / class labels."""
        if features.ndim != 2:
            raise ClassifierError(
                f"expected a 2-d feature matrix, got shape {features.shape}"
            )
        if len(features) != len(labels):
            raise ClassifierError(
                f"{len(features)} rows vs {len(labels)} labels"
            )
        if len(features) == 0:
            raise ClassifierError("cannot fit on an empty dataset")
        self._n_features = features.shape[1]
        self._classes = np.unique(labels)


def validate_row(row: Sequence, n_features: int) -> np.ndarray:
    """Coerce and shape-check a single prediction row."""
    array = np.asarray(row)
    if array.ndim != 1 or array.shape[0] != n_features:
        raise ClassifierError(
            f"expected a row of {n_features} features, got shape {array.shape}"
        )
    return array
