"""Plaintext classifiers trained with numpy only.

The paper evaluates the three model families for which Bost et al. gave
secure evaluation protocols; this package provides from-scratch trainers
for all of them (the offline environment has no scikit-learn):

* :class:`~repro.classifiers.linear.LogisticRegressionClassifier` --
  multinomial logistic regression (the *hyperplane* classifier),
* :class:`~repro.classifiers.naive_bayes.NaiveBayesClassifier` --
  categorical naive Bayes with Laplace smoothing,
* :class:`~repro.classifiers.decision_tree.DecisionTreeClassifier` --
  CART with Gini impurity and ordinal threshold splits.

All trainers consume integer-coded feature matrices produced by
:mod:`repro.data` / :mod:`repro.classifiers.discretize`, which keeps the
plain and secure evaluation paths bit-compatible.
"""

from repro.classifiers.base import Classifier
from repro.classifiers.decision_tree import DecisionTreeClassifier, TreeNode
from repro.classifiers.discretize import Discretizer
from repro.classifiers.forest import RandomForestClassifier
from repro.classifiers.linear import LogisticRegressionClassifier
from repro.classifiers.metrics import (
    accuracy,
    confusion_matrix,
    macro_f1,
)
from repro.classifiers.naive_bayes import NaiveBayesClassifier
from repro.classifiers.regression import (
    RidgeRegression,
    mean_absolute_error,
    r2_score,
)

__all__ = [
    "Classifier",
    "DecisionTreeClassifier",
    "Discretizer",
    "LogisticRegressionClassifier",
    "NaiveBayesClassifier",
    "RandomForestClassifier",
    "RidgeRegression",
    "TreeNode",
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "mean_absolute_error",
    "r2_score",
]
