"""Secure argmax over Paillier-encrypted values (Bost et al. Protocol 3).

Setting: the server holds ``k`` ciphertexts ``[v_1..v_k]`` under the
client's key (e.g. per-class naive-Bayes scores) and the *client* must
learn ``argmax_i v_i`` -- the predicted class -- while the server learns
nothing and the client learns nothing beyond the argmax.

Protocol sketch:

1. the server randomly permutes the candidates, so comparison outcomes
   on permuted positions carry no information the client can use;
2. a sequential tournament keeps an encrypted running maximum. Each
   round runs the encrypted comparison with *client-learns-bit* output;
   the client then selects between the two additively blinded
   candidates and returns the winner re-encrypted, together with the
   encrypted comparison bit so the server can strip the correct blind
   linearly;
3. the client tracks which permuted position last won; a 1-out-of-k
   oblivious transfer over the server's inverse permutation table
   reveals the true index to the client only.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.ot import one_of_n_transfer
from repro.crypto.paillier import PaillierCiphertext
from repro.smc.arithmetic import SharedValue
from repro.smc.comparison import compare_encrypted_client_learns, share_compare_shared
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import Op, protocol_entry
from repro.smc.shares import ShareSession


class ArgmaxError(Exception):
    """Raised on invalid argmax inputs."""

_OT_INDEX_BYTES = 4


@protocol_entry(span="argmax.secure")
def secure_argmax(
    ctx: TwoPartyContext,
    encrypted_values: Sequence[PaillierCiphertext],
    bit_length: int,
) -> int:
    """Return, to the client, the index of the maximum encrypted value.

    Parameters
    ----------
    ctx:
        Session context.
    encrypted_values:
        Server-held ciphertexts under the client's key. Plaintexts must
        be non-negative and below ``2^bit_length``. (Scores that may be
        negative are shifted by the caller; see the naive-Bayes
        protocol.)
    bit_length:
        Magnitude bound of the plaintext values.

    Ties resolve to the candidate the permuted tournament meets last,
    i.e. a uniformly random maximal index -- the same behaviour as the
    original protocol.
    """
    count = len(encrypted_values)
    if count == 0:
        raise ArgmaxError("secure_argmax needs at least one candidate")
    if count == 1:
        return 0

    # Server: permute candidates.
    permutation = list(range(count))
    ctx.server_rng.shuffle(permutation)
    permuted: List[PaillierCiphertext] = [
        encrypted_values[original] for original in permutation
    ]

    current_max = permuted[0]
    winner_position = 0  # client-side: permuted position of current max

    for position in range(1, count):
        challenger = permuted[position]

        # Encrypted comparison: client learns b = (challenger >= max).
        # (The comparison owns its own phase reset.)
        ctx.trace.count(Op.PAILLIER_ADD, 2)
        z = challenger - current_max + (1 << bit_length)
        bit = compare_encrypted_client_learns(ctx, z, bit_length)
        if bit:
            winner_position = position

        # Blinded refresh: the server must not learn b, so the client
        # selects between blinded candidates and returns the encrypted
        # bit for a linear un-blinding.
        blind_max = ctx.blinding_noise(bit_length)
        blind_challenger = ctx.blinding_noise(bit_length)
        ctx.trace.count(Op.PAILLIER_ADD, 2)
        # The tournament's first wire crossing happens inside
        # compare_encrypted_client_learns above, which owns the phase
        # reset; this send deliberately continues that round structure.
        # repro: allow[protocol-entry]
        blinded_pair = ctx.channel.server_sends(
            ctx.rerandomize_batch(
                [current_max + blind_max, challenger + blind_challenger]
            )
        )

        chosen = blinded_pair[1] if bit else blinded_pair[0]
        bit_enc = ctx.client_encrypt(bit)
        chosen, bit_enc = ctx.channel.client_sends(
            [ctx.rerandomize(chosen, rng=ctx.client_rng), bit_enc]
        )

        # Server: subtract blind_max + b * (blind_challenger - blind_max).
        ctx.trace.count(Op.PAILLIER_SCALAR_MUL)
        ctx.trace.count(Op.PAILLIER_ADD, 2)
        correction = bit_enc * (blind_challenger - blind_max)
        current_max = chosen - blind_max - correction

    # Reveal the true index of the winning permuted position to the
    # client only, via 1-out-of-k OT over the inverse permutation.
    ctx.trace.count(Op.OT_TRANSFER_1OF2, max(1, (count - 1).bit_length()))
    table = [
        permutation[pos].to_bytes(_OT_INDEX_BYTES, "big") for pos in range(count)
    ]
    # The OT sub-messages are summarised as one aggregate exchange for
    # byte accounting (each masked table entry crosses the wire once).
    ctx.channel.reset_direction()
    ctx.channel.server_sends([entry for entry in table])
    winner_bytes = one_of_n_transfer(
        table, winner_position, rng=ctx.client_rng, key_bits=256
    )
    return int.from_bytes(winner_bytes, "big")


def secure_argmax_plain_reference(values: Sequence[int]) -> int:
    """Reference argmax used by tests: first maximal index."""
    if not values:
        raise ArgmaxError("empty candidate list")
    best = max(values)
    return next(i for i, v in enumerate(values) if v == best)


@protocol_entry(span="argmax.shares")
def share_secure_argmax(
    session: ShareSession,
    scores: Sequence[SharedValue],
    bit_length: int,
) -> int:
    """Share-backend argmax: client learns the index of the maximum.

    A sequential tournament over *shared* values: each round produces a
    shared keep-bit via the share comparison, then one multiplexing
    multiplication folds the winner into the shared running maximum and
    its (shared) index -- neither party sees any comparison outcome.
    The final index is revealed to the client only, matching
    :func:`secure_argmax`'s output party.

    ``bit_length`` bounds the scores: ``|score| < 2^(bit_length - 1)``,
    so every pairwise difference fits the comparison's magnitude bound.
    Ties resolve to the first maximal index (the plain-reference
    convention): the keep-bit is ``current >= challenger``.
    """
    count = len(scores)
    if count == 0:
        raise ArgmaxError("share_secure_argmax needs at least one candidate")
    if count == 1:
        return 0

    current = scores[0]
    current_index = session.constant(0)
    for position in range(1, count):
        challenger = scores[position]
        keep = share_compare_shared(session, current, challenger, bit_length)
        take = (keep * -1) + 1
        delta_value, delta_index = session.multiply_batch(
            [take, take],
            [challenger - current, (current_index * -1) + position],
        )
        current = current + delta_value
        current_index = current_index + delta_index

    session.ctx.channel.reset_direction()
    winner = session.reveal_to_client(current_index, signed=False)
    # The revealed index is the protocol's output for the client;
    # validating it is the point.
    # repro: allow[branch-on-secret]
    if not 0 <= winner < count:
        raise ArgmaxError(
            f"share argmax reconstruction produced index {winner} outside "
            f"[0, {count}); scores exceeded the declared bit length"
        )
    return winner
