"""Two-party secure-computation runtime and protocol building blocks.

This package is the SMC substrate the secure classifiers run on:

* :mod:`repro.smc.wire` -- the canonical wire codec: every payload shape
  that crosses the two-party link has one deterministic tagged encoding,
  from which both the byte accounting and the socket transports derive.
* :mod:`repro.smc.network` -- the accounted message channel (bytes per
  direction, messages, rounds), plus latency/bandwidth network profiles
  (LAN / WAN / loopback). A channel optionally routes every payload
  through a transport.
* :mod:`repro.smc.transport` -- pluggable transports: in-process codec
  round-trip and a real TCP socket backend with a mirror peer process,
  timeouts and bounded retry; plus socket serving of deployment bundles.
* :mod:`repro.smc.protocol` -- execution traces: operation counters,
  transfer statistics and wall-clock timing shared by all protocols.
* :mod:`repro.smc.comparison` -- the DGK private-input comparison and the
  Veugen/Bost encrypted-value comparison built on it.
* :mod:`repro.smc.argmax` -- Bost-style encrypted argmax with a blinded
  refresh step and an OT-based permutation reveal.
* :mod:`repro.smc.dotproduct` -- Paillier encrypted dot products.
* :mod:`repro.smc.lookup` -- private table lookup via encrypted indicator
  vectors and via 1-out-of-n OT.
* :mod:`repro.smc.arithmetic` -- additive-share arithmetic with Beaver
  triples (used for share-based variants and tests).
* :mod:`repro.smc.cost_model` -- the analytic cost model that converts an
  execution trace into estimated seconds under a hardware/network
  profile (production key sizes, LAN/WAN links).
"""

from repro.smc.network import Channel, NetworkModel, NetworkProfile
from repro.smc.protocol import ExecutionTrace, Op
from repro.smc.wire import WireCodec, WireError

#: Transport names are re-exported lazily (PEP 562): the transport
#: module carries the socket/multiprocessing machinery, and importing
#: :mod:`repro.smc` (e.g. via the pipeline or the repro.api facade)
#: must not drag it in.
_TRANSPORT_EXPORTS = frozenset({
    "InProcessTransport",
    "TcpTransport",
    "TransportConfig",
    "TransportError",
    "make_transport",
})


def __getattr__(name: str):
    if name in _TRANSPORT_EXPORTS:
        import importlib

        value = getattr(
            importlib.import_module("repro.smc.transport"), name
        )
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Channel",
    "ExecutionTrace",
    "InProcessTransport",
    "NetworkModel",
    "NetworkProfile",
    "Op",
    "TcpTransport",
    "TransportConfig",
    "TransportError",
    "WireCodec",
    "WireError",
    "make_transport",
]
