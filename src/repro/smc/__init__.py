"""Two-party secure-computation runtime and protocol building blocks.

This package is the SMC substrate the secure classifiers run on:

* :mod:`repro.smc.network` -- an in-process message channel that accounts
  for every byte and communication round, plus latency/bandwidth network
  profiles (LAN / WAN / loopback).
* :mod:`repro.smc.protocol` -- execution traces: operation counters,
  transfer statistics and wall-clock timing shared by all protocols.
* :mod:`repro.smc.comparison` -- the DGK private-input comparison and the
  Veugen/Bost encrypted-value comparison built on it.
* :mod:`repro.smc.argmax` -- Bost-style encrypted argmax with a blinded
  refresh step and an OT-based permutation reveal.
* :mod:`repro.smc.dotproduct` -- Paillier encrypted dot products.
* :mod:`repro.smc.lookup` -- private table lookup via encrypted indicator
  vectors and via 1-out-of-n OT.
* :mod:`repro.smc.arithmetic` -- additive-share arithmetic with Beaver
  triples (used for share-based variants and tests).
* :mod:`repro.smc.cost_model` -- the analytic cost model that converts an
  execution trace into estimated seconds under a hardware/network
  profile (production key sizes, LAN/WAN links).
"""

from repro.smc.network import Channel, NetworkModel, NetworkProfile
from repro.smc.protocol import ExecutionTrace, Op

__all__ = [
    "Channel",
    "ExecutionTrace",
    "NetworkModel",
    "NetworkProfile",
    "Op",
]
