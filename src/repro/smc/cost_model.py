"""Analytic cost model: execution traces -> estimated seconds.

The pure-Python protocols run with small research keys; the paper's
evaluation used native implementations with production keys over real
networks. The cost model bridges the gap: an
:class:`~repro.smc.protocol.ExecutionTrace` records *what* a protocol
did (operation counts, bytes, rounds), and a :class:`CostModel` prices
that trace under

* a :class:`HardwareProfile` -- seconds per cryptographic operation,
  either measured live on this machine (:func:`calibrate_hardware_profile`)
  or one of the documented native-implementation estimates, and
* a :class:`~repro.smc.network.NetworkModel` -- latency and bandwidth.

Because the *relative* cost structure (ops proportional to hidden
features, rounds proportional to comparisons) is preserved exactly by
the simulator, pricing the same trace under different profiles recovers
the paper's performance curves at any scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.crypto.dgk import DgkKeyPair
from repro.crypto.paillier import PaillierKeyPair
from repro.crypto.rand import DeterministicRandom, fresh_rng
from repro.smc.network import NetworkModel, NetworkProfile
from repro.smc.protocol import ExecutionTrace, Op


@dataclass(frozen=True)
class HardwareProfile:
    """Seconds per cryptographic operation for one implementation/key
    size combination.

    Attributes
    ----------
    name:
        Identifier used in benchmark output.
    op_seconds:
        Mapping from :class:`Op` to seconds per invocation. Missing ops
        are priced at zero (appropriate for negligible bookkeeping ops).
    ciphertext_bytes:
        Nominal Paillier ciphertext wire size, used to rescale traffic
        recorded under a different key size.
    """

    name: str
    op_seconds: Mapping[Op, float]
    ciphertext_bytes: int = 512

    def compute_seconds(self, trace: ExecutionTrace) -> float:
        """Total compute time implied by the trace's operation counts."""
        return sum(
            count * self.op_seconds.get(op, 0.0)
            for op, count in trace.ops.items()
        )


# Literature-derived estimates for a native (GMP-backed C++)
# implementation on 2015-era server hardware, the setting of the
# original evaluation. Sources: Bost et al. (NDSS'15) microbenchmarks
# and standard GMP modexp throughput; values are order-of-magnitude
# calibrations, not measurements.
NATIVE_1024 = HardwareProfile(
    name="native-paillier1024",
    op_seconds={
        Op.PAILLIER_ENCRYPT: 1.6e-3,
        Op.PAILLIER_DECRYPT: 1.2e-3,
        Op.PAILLIER_ADD: 4.0e-6,
        Op.PAILLIER_SCALAR_MUL: 2.5e-4,
        Op.PAILLIER_RERANDOMIZE: 1.6e-3,
        Op.DGK_ENCRYPT: 2.0e-4,
        Op.DGK_ZERO_TEST: 1.5e-4,
        Op.DGK_ADD: 1.5e-6,
        Op.DGK_SCALAR_MUL: 4.0e-5,
        Op.GM_ENCRYPT: 5.0e-5,
        Op.GM_DECRYPT: 5.0e-5,
        Op.GM_XOR: 1.0e-6,
        Op.OT_TRANSFER_1OF2: 3.0e-3,
        Op.SHARE_MUL_TRIPLE: 2.0e-6,
        Op.SYMMETRIC_OP: 1.0e-7,
    },
    ciphertext_bytes=256,
)

NATIVE_2048 = HardwareProfile(
    name="native-paillier2048",
    op_seconds={
        # Modexp scales ~cubically in the modulus size: 2048-bit ops are
        # roughly 6x their 1024-bit counterparts.
        Op.PAILLIER_ENCRYPT: 9.5e-3,
        Op.PAILLIER_DECRYPT: 7.0e-3,
        Op.PAILLIER_ADD: 1.5e-5,
        Op.PAILLIER_SCALAR_MUL: 1.5e-3,
        Op.PAILLIER_RERANDOMIZE: 9.5e-3,
        Op.DGK_ENCRYPT: 1.2e-3,
        Op.DGK_ZERO_TEST: 9.0e-4,
        Op.DGK_ADD: 5.0e-6,
        Op.DGK_SCALAR_MUL: 2.4e-4,
        Op.GM_ENCRYPT: 3.0e-4,
        Op.GM_DECRYPT: 3.0e-4,
        Op.GM_XOR: 3.0e-6,
        Op.OT_TRANSFER_1OF2: 8.0e-3,
        Op.SHARE_MUL_TRIPLE: 2.0e-6,
        Op.SYMMETRIC_OP: 1.0e-7,
    },
    ciphertext_bytes=512,
)


@dataclass(frozen=True)
class CostBreakdown:
    """Priced trace: compute + network = total seconds."""

    compute_seconds: float
    network_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end estimated latency for the traced execution."""
        return self.compute_seconds + self.network_seconds


@dataclass(frozen=True)
class CostModel:
    """Prices execution traces under a hardware + network profile."""

    hardware: HardwareProfile
    network: NetworkModel = NetworkProfile.LAN
    traffic_scale: float = 1.0

    def price(self, trace: ExecutionTrace) -> CostBreakdown:
        """Return the cost breakdown for ``trace``.

        ``traffic_scale`` rescales recorded bytes when the trace was
        produced with a different key size than the profile models
        (e.g. 512-bit research keys vs 2048-bit production keys).
        """
        compute = self.hardware.compute_seconds(trace)
        scaled_bytes = int(trace.total_bytes * self.traffic_scale)
        network = self.network.transfer_seconds(scaled_bytes, trace.rounds)
        return CostBreakdown(compute_seconds=compute, network_seconds=network)

    def total_seconds(self, trace: ExecutionTrace) -> float:
        """Shorthand for ``price(trace).total_seconds``."""
        return self.price(trace).total_seconds


def traffic_scale_for(trace_key_bits: int, profile_key_bits: int) -> float:
    """Byte-rescaling factor between two Paillier key sizes.

    Ciphertext sizes are linear in the modulus size, and ciphertexts
    dominate traffic, so a linear rescale is accurate.
    """
    if trace_key_bits <= 0 or profile_key_bits <= 0:
        raise ValueError("key sizes must be positive")
    return profile_key_bits / trace_key_bits


def calibrate_hardware_profile(
    paillier_bits: int = 512,
    dgk_bits: int = 256,
    dgk_plaintext_bits: int = 16,
    iterations: int = 20,
    rng: Optional[DeterministicRandom] = None,
) -> HardwareProfile:
    """Measure per-op timings of *this* machine's pure-Python crypto.

    Runs short microbenchmarks of every priced operation and returns a
    profile, so live benchmark numbers and modeled numbers come from the
    same yardstick.
    """
    rng = rng or fresh_rng(0xCA11B)
    paillier = PaillierKeyPair.generate(key_bits=paillier_bits, rng=rng)
    dgk = DgkKeyPair.generate(
        key_bits=dgk_bits, plaintext_bits=dgk_plaintext_bits, rng=rng
    )

    def timeit(fn) -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        return (time.perf_counter() - start) / iterations

    sample_cipher = paillier.public_key.encrypt(123, rng=rng)
    other_cipher = paillier.public_key.encrypt(456, rng=rng)
    dgk_cipher = dgk.public_key.encrypt(5, rng=rng)
    dgk_other = dgk.public_key.encrypt(7, rng=rng)

    op_seconds: Dict[Op, float] = {
        Op.PAILLIER_ENCRYPT: timeit(
            lambda: paillier.public_key.encrypt(123, rng=rng)
        ),
        Op.PAILLIER_DECRYPT: timeit(
            lambda: paillier.private_key.decrypt(sample_cipher)
        ),
        Op.PAILLIER_ADD: timeit(lambda: sample_cipher + other_cipher),
        Op.PAILLIER_SCALAR_MUL: timeit(lambda: sample_cipher * 31337),
        Op.PAILLIER_RERANDOMIZE: timeit(lambda: sample_cipher.rerandomize(rng=rng)),
        Op.DGK_ENCRYPT: timeit(lambda: dgk.public_key.encrypt(5, rng=rng)),
        Op.DGK_ZERO_TEST: timeit(lambda: dgk.private_key.is_zero(dgk_cipher)),
        Op.DGK_ADD: timeit(lambda: dgk_cipher + dgk_other),
        Op.DGK_SCALAR_MUL: timeit(lambda: dgk_cipher * 3),
        Op.OT_TRANSFER_1OF2: 2.0e-3,  # dominated by RSA keygen; nominal
        Op.SHARE_MUL_TRIPLE: 2.0e-6,
        Op.SYMMETRIC_OP: 1.0e-7,
    }
    return HardwareProfile(
        name=f"calibrated-python-{paillier_bits}",
        op_seconds=op_seconds,
        ciphertext_bytes=paillier_bits // 4,
    )
