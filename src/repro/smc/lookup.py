"""Private table lookup for discrete features.

The secure naive-Bayes protocol must add ``log P(x_f = v | c)`` to each
class score without the server learning ``v`` and without the client
learning the table. Two standard constructions are provided:

* **Indicator vectors** (:func:`indicator_lookup`): the client sends one
  Paillier encryption per domain value -- a 0/1 indicator of its actual
  value -- and the server takes the inner product with its (plaintext)
  table column. Constant rounds; cost scales with the domain size. This
  is the construction whose per-feature cost the disclosure optimizer
  removes when a feature is revealed.

* **1-out-of-n OT** (:func:`ot_lookup_shares`): the parties end with
  additive shares of the table entry. Useful when the table is held as
  integers and the output must remain hidden from both sides.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.ot import one_of_n_transfer
from repro.crypto.paillier import PaillierCiphertext
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import Op, protocol_entry

_OT_VALUE_BYTES = 16


class LookupError_(Exception):
    """Raised on invalid lookup inputs (domain mismatch, bad index)."""


@protocol_entry(span="lookup.encrypt_indicator_vector")
def encrypt_indicator_vector(
    ctx: TwoPartyContext, value_index: int, domain_size: int
) -> List[PaillierCiphertext]:
    """Client-side: encrypt the one-hot indicator of ``value_index`` and
    send it to the server."""
    if not 0 <= value_index < domain_size:
        raise LookupError_(
            f"value index {value_index} outside domain of size {domain_size}"
        )
    indicators = ctx.client_encrypt_batch(
        [1 if j == value_index else 0 for j in range(domain_size)]
    )
    ctx.channel.reset_direction()
    return ctx.channel.client_sends(indicators)


def indicator_lookup(
    ctx: TwoPartyContext,
    encrypted_indicators: Sequence[PaillierCiphertext],
    table_column: Sequence[int],
) -> PaillierCiphertext:
    """Server-side: ``[table_column[v]]`` from the client's encrypted
    one-hot vector, as the homomorphic inner product."""
    if len(encrypted_indicators) != len(table_column):
        raise LookupError_(
            f"{len(encrypted_indicators)} indicators vs "
            f"{len(table_column)} table entries"
        )
    nonzero = sum(1 for entry in table_column if entry != 0)
    if nonzero == 0:
        return ctx.server_encrypt(0)
    # Fused multi-exponentiation; seeded from the first nonzero entry,
    # so no fresh encryption is spent on the accumulator.
    ctx.trace.count(Op.PAILLIER_SCALAR_MUL, nonzero)
    ctx.trace.count(Op.PAILLIER_ADD, nonzero - 1)
    return ctx.engine.dot_product(encrypted_indicators, table_column)


@protocol_entry(span="lookup.ot_shares")
def ot_lookup_shares(
    ctx: TwoPartyContext,
    table: Sequence[int],
    client_index: int,
    share_bits: int = 64,
) -> tuple:
    """Additively share ``table[client_index]`` between the parties.

    The server masks every entry with one fresh random value ``r`` (its
    share is ``-r``); the client obtains its masked entry through
    1-out-of-n OT. Returns ``(client_share, server_share)`` with
    ``client_share + server_share == table[client_index]`` over the
    integers-mod-``2^share_bits`` ring.
    """
    if not 0 <= client_index < len(table):
        raise LookupError_(
            f"index {client_index} outside table of size {len(table)}"
        )
    modulus = 1 << share_bits
    mask = ctx.server_rng.randbelow(modulus)
    masked_entries = [
        ((entry + mask) % modulus).to_bytes(_OT_VALUE_BYTES, "big")
        for entry in table
    ]
    bits = max(1, (len(table) - 1).bit_length())
    ctx.trace.count(Op.OT_TRANSFER_1OF2, bits)
    ctx.channel.reset_direction()
    ctx.channel.server_sends(masked_entries)
    chosen = one_of_n_transfer(
        masked_entries, client_index, rng=ctx.client_rng, key_bits=256
    )
    client_share = int.from_bytes(chosen, "big") % modulus
    server_share = (-mask) % modulus
    return client_share, server_share
