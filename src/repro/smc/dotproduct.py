"""Encrypted dot products for the hyperplane classifier.

The client encrypts its *hidden* feature values under Paillier; the
server folds in its weight vector homomorphically and adds the plaintext
contribution of any disclosed features for free. The output is a
server-held encryption of the full score -- ready for the sign test or
argmax.

This module is where the paper's disclosure optimization pays off for
linear models: each hidden feature costs one client encryption, one
ciphertext transfer and one server scalar multiplication, while each
disclosed feature costs one plaintext multiply-add.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.paillier import PaillierCiphertext
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import Op, protocol_entry


class DotProductError(Exception):
    """Raised on shape mismatches in the encrypted dot product."""


@protocol_entry(span="dotproduct.encrypt_features")
def encrypt_feature_vector(
    ctx: TwoPartyContext, values: Sequence[int]
) -> List[PaillierCiphertext]:
    """Client-side: encrypt hidden feature values and send them.

    Returns the ciphertext list as received by the server. The batch
    runs on the context's engine (process-parallel when configured) and
    is transcript-identical to encrypting one value at a time.
    """
    ciphertexts = ctx.client_encrypt_batch(list(values))
    if not ciphertexts:
        return []
    ctx.channel.reset_direction()
    return ctx.channel.client_sends(ciphertexts)


def encrypted_dot_product(
    ctx: TwoPartyContext,
    encrypted_values: Sequence[PaillierCiphertext],
    weights: Sequence[int],
    plaintext_offset: int = 0,
) -> PaillierCiphertext:
    """Server-side: compute ``[sum_i w_i * x_i + offset]``.

    Parameters
    ----------
    encrypted_values:
        Ciphertexts of the hidden features (client-encrypted).
    weights:
        The server's integer (fixed-point) weights, one per ciphertext.
    plaintext_offset:
        The already-known part of the score: bias plus the disclosed
        features' contribution, computed in the clear at zero crypto
        cost.
    """
    if len(encrypted_values) != len(weights):
        raise DotProductError(
            f"{len(encrypted_values)} ciphertexts vs {len(weights)} weights"
        )
    nonzero = sum(1 for weight in weights if weight != 0)
    if nonzero == 0:
        # Nothing to fold homomorphically; the offset needs a fresh
        # (randomised) encryption to stay hiding.
        return ctx.server_encrypt(plaintext_offset)
    # Fused simultaneous multi-exponentiation over the nonzero terms.
    # The accumulator is seeded from the first nonzero term instead of
    # an encryption of the offset, so a dot product costs zero fresh
    # encryptions; the offset folds in as one plaintext addition.
    ctx.trace.count(Op.PAILLIER_SCALAR_MUL, nonzero)
    ctx.trace.count(Op.PAILLIER_ADD, nonzero - 1)
    accumulator = ctx.engine.dot_product(encrypted_values, weights)
    if plaintext_offset != 0:
        accumulator = ctx.add(accumulator, plaintext_offset)
    return accumulator


def batched_encrypted_dot_products(
    ctx: TwoPartyContext,
    encrypted_values: Sequence[PaillierCiphertext],
    weight_rows: Sequence[Sequence[int]],
    plaintext_offsets: Sequence[int],
) -> List[PaillierCiphertext]:
    """Server-side: one encrypted score per weight row (multi-class).

    The client's ciphertexts are reused across rows, so the client-side
    cost is paid once regardless of the number of classes.
    """
    if len(weight_rows) != len(plaintext_offsets):
        raise DotProductError(
            f"{len(weight_rows)} weight rows vs {len(plaintext_offsets)} offsets"
        )
    return [
        encrypted_dot_product(ctx, encrypted_values, row, offset)
        for row, offset in zip(weight_rows, plaintext_offsets)
    ]
