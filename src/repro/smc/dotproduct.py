"""Encrypted dot products for the hyperplane classifier.

The client encrypts its *hidden* feature values under Paillier; the
server folds in its weight vector homomorphically and adds the plaintext
contribution of any disclosed features for free. The output is a
server-held encryption of the full score -- ready for the sign test or
argmax.

This module is where the paper's disclosure optimization pays off for
linear models: each hidden feature costs one client encryption, one
ciphertext transfer and one server scalar multiplication, while each
disclosed feature costs one plaintext multiply-add.

The *share variant* at the bottom is the same contract under the
``shares`` protocol backend: the client input-shares its hidden
features, the server input-shares its nonzero weights, and each term
costs one precomputed Beaver triple -- integer ring arithmetic online,
with all openings for a whole multi-class score bank batched into one
two-message exchange.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.paillier import PaillierCiphertext
from repro.smc.arithmetic import SharedValue
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import Op, protocol_entry
from repro.smc.shares import ShareSession


class DotProductError(Exception):
    """Raised on shape mismatches in the encrypted dot product."""


@protocol_entry(span="dotproduct.encrypt_features")
def encrypt_feature_vector(
    ctx: TwoPartyContext, values: Sequence[int]
) -> List[PaillierCiphertext]:
    """Client-side: encrypt hidden feature values and send them.

    Returns the ciphertext list as received by the server. The batch
    runs on the context's engine (process-parallel when configured) and
    is transcript-identical to encrypting one value at a time.
    """
    ciphertexts = ctx.client_encrypt_batch(list(values))
    if not ciphertexts:
        return []
    ctx.channel.reset_direction()
    return ctx.channel.client_sends(ciphertexts)


def encrypted_dot_product(
    ctx: TwoPartyContext,
    encrypted_values: Sequence[PaillierCiphertext],
    weights: Sequence[int],
    plaintext_offset: int = 0,
) -> PaillierCiphertext:
    """Server-side: compute ``[sum_i w_i * x_i + offset]``.

    Parameters
    ----------
    encrypted_values:
        Ciphertexts of the hidden features (client-encrypted).
    weights:
        The server's integer (fixed-point) weights, one per ciphertext.
    plaintext_offset:
        The already-known part of the score: bias plus the disclosed
        features' contribution, computed in the clear at zero crypto
        cost.
    """
    if len(encrypted_values) != len(weights):
        raise DotProductError(
            f"{len(encrypted_values)} ciphertexts vs {len(weights)} weights"
        )
    nonzero = sum(1 for weight in weights if weight != 0)
    if nonzero == 0:
        # Nothing to fold homomorphically; the offset needs a fresh
        # (randomised) encryption to stay hiding.
        return ctx.server_encrypt(plaintext_offset)
    # Fused simultaneous multi-exponentiation over the nonzero terms.
    # The accumulator is seeded from the first nonzero term instead of
    # an encryption of the offset, so a dot product costs zero fresh
    # encryptions; the offset folds in as one plaintext addition.
    ctx.trace.count(Op.PAILLIER_SCALAR_MUL, nonzero)
    ctx.trace.count(Op.PAILLIER_ADD, nonzero - 1)
    accumulator = ctx.engine.dot_product(encrypted_values, weights)
    if plaintext_offset != 0:
        accumulator = ctx.add(accumulator, plaintext_offset)
    return accumulator


def batched_encrypted_dot_products(
    ctx: TwoPartyContext,
    encrypted_values: Sequence[PaillierCiphertext],
    weight_rows: Sequence[Sequence[int]],
    plaintext_offsets: Sequence[int],
) -> List[PaillierCiphertext]:
    """Server-side: one encrypted score per weight row (multi-class).

    The client's ciphertexts are reused across rows, so the client-side
    cost is paid once regardless of the number of classes.
    """
    if len(weight_rows) != len(plaintext_offsets):
        raise DotProductError(
            f"{len(weight_rows)} weight rows vs {len(plaintext_offsets)} offsets"
        )
    return [
        encrypted_dot_product(ctx, encrypted_values, row, offset)
        for row, offset in zip(weight_rows, plaintext_offsets)
    ]


# -- share variant (the shares backend's dot-product layer) ------------------


@protocol_entry(span="dotproduct.share_features")
def share_feature_vector(
    session: ShareSession, values: Sequence[int]
) -> List[SharedValue]:
    """Client-side: secret-share hidden feature values.

    The share-backend mirror of :func:`encrypt_feature_vector`: the
    server's share vector crosses the wire as one ``TAG_SHARE`` list;
    no cryptographic operations are spent -- sharing is two ring
    subtractions per feature.
    """
    if not values:
        return []
    session.ctx.channel.reset_direction()
    return session.input_client(values)


@protocol_entry(span="dotproduct.share_scores")
def shared_dot_products(
    session: ShareSession,
    shared_values: Sequence[SharedValue],
    weight_rows: Sequence[Sequence[int]],
    plaintext_offsets: Sequence[int],
) -> List[SharedValue]:
    """Server-side: one *shared* score per weight row (multi-class).

    The server input-shares its nonzero weights (one message for every
    row), then a single batched Beaver multiplication covers every
    ``w_i * x_i`` term of every row -- two opening messages total. Zero
    weights are skipped, exactly as the Paillier path skips them; each
    public offset folds into the client share for free. Rows with no
    nonzero hidden weight reduce to the shared public offset.
    """
    if len(weight_rows) != len(plaintext_offsets):
        raise DotProductError(
            f"{len(weight_rows)} weight rows vs {len(plaintext_offsets)} offsets"
        )
    terms_per_row: List[List[int]] = []
    flat_weights: List[int] = []
    flat_features: List[SharedValue] = []
    for row in weight_rows:
        if len(row) != len(shared_values):
            raise DotProductError(
                f"{len(shared_values)} shares vs {len(row)} weights"
            )
        indices = [i for i, weight in enumerate(row) if weight != 0]
        terms_per_row.append(indices)
        flat_weights.extend(row[i] for i in indices)
        flat_features.extend(shared_values[i] for i in indices)

    if flat_weights:
        session.ctx.channel.reset_direction()
        shared_weights = session.input_server(flat_weights)
        products = session.multiply_batch(flat_features, shared_weights)
    else:
        products = []

    scores: List[SharedValue] = []
    cursor = 0
    for indices, offset in zip(terms_per_row, plaintext_offsets):
        score = session.constant(int(offset))
        for product in products[cursor:cursor + len(indices)]:
            score = score + product
        cursor += len(indices)
        scores.append(score)
    return scores
