"""Two-party network layer with byte and round accounting.

Every logical wire crossing goes through a :class:`Channel`, which

* measures the canonically encoded size of each payload (derived from
  the wire codec, :mod:`repro.smc.wire`, so the accounting equals what a
  real socket would carry byte-for-byte),
* counts messages, and
* counts *rounds* -- maximal runs of messages flowing in one direction,
  the quantity that multiplies network latency in the cost model.

A channel optionally carries a *transport* (see
:mod:`repro.smc.transport`): when attached, every payload is actually
encoded, shipped across the transport (e.g. a localhost TCP socket to a
peer process), decoded on the far side and handed back -- the protocol
then runs on data that genuinely crossed the wire, and the measured
frame bytes are asserted against the trace accounting.

:class:`NetworkModel` prices a transcript under a latency/bandwidth
profile. Three standard profiles mirror the setups secure-classification
papers evaluate on: loopback, LAN and WAN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import repro.telemetry as telemetry
from repro.smc import wire
from repro.smc.protocol import ExecutionTrace

#: Per-message framing overhead (frame kind byte + u32 body length).
FRAME_OVERHEAD = wire.FRAME_OVERHEAD


class ChannelError(Exception):
    """Raised on malformed channel usage (unknown direction, bad payload)."""


class Direction(enum.Enum):
    """Who is sending the current message."""

    CLIENT_TO_SERVER = "client->server"
    SERVER_TO_CLIENT = "server->client"


def wire_size(payload: Any) -> int:
    """Canonical encoded size of a payload in bytes (excluding framing).

    Delegates to the wire codec (:func:`repro.smc.wire.encoded_size`),
    so signed integers are sized by their real two's-complement encoding
    (``wire_size(-255) != wire_size(255)`` resolves to two distinct
    encodings of equal, unambiguous length) and numpy scalars
    (``np.int64``, ``np.bool_``, ...) are sized like their canonical
    Python equivalents.

    Objects that expose ``serialized_size_bytes()`` but have no codec
    encoding (e.g. OT parameter blocks) are sized at their declared
    width plus the element overhead; they can be accounted in the
    simulator but not shipped over a real transport.
    """
    try:
        return wire.encoded_size(payload)
    except wire.WireError:
        if hasattr(payload, "serialized_size_bytes"):
            return wire.ELEMENT_OVERHEAD + payload.serialized_size_bytes()
        raise ChannelError(
            f"cannot size payload of type {type(payload).__name__}"
        ) from None


@dataclass
class Channel:
    """An accounted bidirectional link between client and server.

    Protocols call :meth:`send` at every logical wire crossing; the
    payload is returned to the other party after one frame (header plus
    canonical encoding) has been charged to the attached trace. Without
    a transport the payload is handed over in-process; with one, the
    encoded frame physically crosses the transport and the decoded copy
    is returned.
    """

    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    transport: Optional[Any] = None
    _last_direction: Optional[Direction] = None

    def send(self, direction: Direction, payload: Any) -> Any:
        """Record a message and hand the payload to the other party.

        Delivery happens *before* accounting: a transport failure (or a
        codec/accounting disagreement) must leave the trace unchanged,
        so the trace never claims bytes for frames that did not cross
        the wire. Telemetry is charged from the same ``size`` value as
        the trace, which is what keeps the two views reconciled.
        """
        if direction not in (
            Direction.CLIENT_TO_SERVER, Direction.SERVER_TO_CLIENT
        ):  # pragma: no cover - enum exhausts the cases
            raise ChannelError(f"unknown direction {direction!r}")
        size = FRAME_OVERHEAD + wire_size(payload)
        tag = None
        if telemetry.enabled():
            tag = wire.payload_tag_name(payload)
        if self.transport is not None:
            payload = self.transport.exchange(direction, payload)
            measured = self.transport.last_frame_bytes
            if measured != size:
                raise ChannelError(
                    f"transport frame carried {measured} bytes but the "
                    f"trace accounted {size}; codec and accounting "
                    f"disagree"
                )
        if direction is Direction.CLIENT_TO_SERVER:
            self.trace.bytes_client_to_server += size
        else:
            self.trace.bytes_server_to_client += size
        self.trace.messages += 1
        if direction is not self._last_direction:
            self.trace.rounds += 1
            self._last_direction = direction
        if telemetry.enabled():
            telemetry.record_wire(
                "client_to_server"
                if direction is Direction.CLIENT_TO_SERVER
                else "server_to_client",
                size,
                tag,
            )
        return payload

    def client_sends(self, payload: Any) -> Any:
        """Shorthand for a client-to-server message."""
        return self.send(Direction.CLIENT_TO_SERVER, payload)

    def server_sends(self, payload: Any) -> Any:
        """Shorthand for a server-to-client message."""
        return self.send(Direction.SERVER_TO_CLIENT, payload)

    def reset_direction(self) -> None:
        """Start a fresh protocol phase (next message opens a new round)."""
        self._last_direction = None


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth pricing of a transcript.

    Attributes
    ----------
    name:
        Human-readable profile name.
    latency_seconds:
        One-way message latency.
    bandwidth_bytes_per_second:
        Link throughput.
    """

    name: str
    latency_seconds: float
    bandwidth_bytes_per_second: float

    def transfer_seconds(self, total_bytes: int, rounds: int) -> float:
        """Time to push ``total_bytes`` over ``rounds`` latency-bound
        round trips."""
        if total_bytes < 0 or rounds < 0:
            raise ValueError("bytes and rounds must be non-negative")
        return rounds * self.latency_seconds + total_bytes / self.bandwidth_bytes_per_second

    def price(self, trace: ExecutionTrace) -> float:
        """Network seconds implied by a trace under this model."""
        return self.transfer_seconds(trace.total_bytes, trace.rounds)


class NetworkProfile:
    """Standard network profiles used across benchmarks."""

    LOOPBACK = NetworkModel(
        name="loopback",
        latency_seconds=10e-6,
        bandwidth_bytes_per_second=5e9,
    )
    LAN = NetworkModel(
        name="lan",
        latency_seconds=0.25e-3,
        bandwidth_bytes_per_second=125e6,  # 1 Gbit/s
    )
    WAN = NetworkModel(
        name="wan",
        latency_seconds=40e-3,
        bandwidth_bytes_per_second=6.25e6,  # 50 Mbit/s
    )

    @classmethod
    def by_name(cls, name: str) -> NetworkModel:
        """Look a profile up by its name (case-insensitive)."""
        profiles = {
            "loopback": cls.LOOPBACK,
            "lan": cls.LAN,
            "wan": cls.WAN,
        }
        try:
            return profiles[name.lower()]
        except KeyError:
            raise ChannelError(
                f"unknown network profile {name!r}; expected one of "
                f"{sorted(profiles)}"
            ) from None
