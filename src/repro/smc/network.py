"""Simulated two-party network with byte and round accounting.

Protocols in this library run in-process, but every logical wire
crossing goes through a :class:`Channel`, which

* measures the serialized size of each payload,
* counts messages, and
* counts *rounds* -- maximal runs of messages flowing in one direction,
  the quantity that multiplies network latency in the cost model.

:class:`NetworkModel` then prices a transcript under a latency/bandwidth
profile. Three standard profiles mirror the setups secure-classification
papers evaluate on: loopback, LAN and WAN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.smc.protocol import ExecutionTrace


class ChannelError(Exception):
    """Raised on malformed channel usage (unknown direction, bad payload)."""


class Direction(enum.Enum):
    """Who is sending the current message."""

    CLIENT_TO_SERVER = "client->server"
    SERVER_TO_CLIENT = "server->client"


def wire_size(payload: Any) -> int:
    """Serialized size of a payload in bytes.

    Supported payloads: ints (minimal big-endian length plus a 4-byte
    length prefix), bytes, strings, ``None`` (protocol signals), objects
    exposing ``serialized_size_bytes()`` (all ciphertexts and OT
    parameters), and lists/tuples/dicts of the above.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 4 + (payload.bit_length() + 7) // 8
    if isinstance(payload, bytes):
        return 4 + len(payload)
    if isinstance(payload, str):
        return 4 + len(payload.encode("utf-8"))
    if isinstance(payload, float):
        return 8
    if hasattr(payload, "serialized_size_bytes"):
        return payload.serialized_size_bytes()
    if isinstance(payload, (list, tuple)):
        return 4 + sum(wire_size(item) for item in payload)
    if isinstance(payload, dict):
        return 4 + sum(wire_size(k) + wire_size(v) for k, v in payload.items())
    raise ChannelError(f"cannot size payload of type {type(payload).__name__}")


@dataclass
class Channel:
    """An accounted bidirectional link between client and server.

    Protocols call :meth:`send` at every logical wire crossing; the
    payload is returned unchanged (the simulator shares one address
    space) after its size has been charged to the attached trace.
    """

    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    _last_direction: Optional[Direction] = None

    def send(self, direction: Direction, payload: Any) -> Any:
        """Record a message and hand the payload to the other party."""
        size = wire_size(payload)
        if direction is Direction.CLIENT_TO_SERVER:
            self.trace.bytes_client_to_server += size
        elif direction is Direction.SERVER_TO_CLIENT:
            self.trace.bytes_server_to_client += size
        else:  # pragma: no cover - enum exhausts the cases
            raise ChannelError(f"unknown direction {direction!r}")
        self.trace.messages += 1
        if direction is not self._last_direction:
            self.trace.rounds += 1
            self._last_direction = direction
        return payload

    def client_sends(self, payload: Any) -> Any:
        """Shorthand for a client-to-server message."""
        return self.send(Direction.CLIENT_TO_SERVER, payload)

    def server_sends(self, payload: Any) -> Any:
        """Shorthand for a server-to-client message."""
        return self.send(Direction.SERVER_TO_CLIENT, payload)

    def reset_direction(self) -> None:
        """Start a fresh protocol phase (next message opens a new round)."""
        self._last_direction = None


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth pricing of a transcript.

    Attributes
    ----------
    name:
        Human-readable profile name.
    latency_seconds:
        One-way message latency.
    bandwidth_bytes_per_second:
        Link throughput.
    """

    name: str
    latency_seconds: float
    bandwidth_bytes_per_second: float

    def transfer_seconds(self, total_bytes: int, rounds: int) -> float:
        """Time to push ``total_bytes`` over ``rounds`` latency-bound
        round trips."""
        if total_bytes < 0 or rounds < 0:
            raise ValueError("bytes and rounds must be non-negative")
        return rounds * self.latency_seconds + total_bytes / self.bandwidth_bytes_per_second

    def price(self, trace: ExecutionTrace) -> float:
        """Network seconds implied by a trace under this model."""
        return self.transfer_seconds(trace.total_bytes, trace.rounds)


class NetworkProfile:
    """Standard network profiles used across benchmarks."""

    LOOPBACK = NetworkModel(
        name="loopback",
        latency_seconds=10e-6,
        bandwidth_bytes_per_second=5e9,
    )
    LAN = NetworkModel(
        name="lan",
        latency_seconds=0.25e-3,
        bandwidth_bytes_per_second=125e6,  # 1 Gbit/s
    )
    WAN = NetworkModel(
        name="wan",
        latency_seconds=40e-3,
        bandwidth_bytes_per_second=6.25e6,  # 50 Mbit/s
    )

    @classmethod
    def by_name(cls, name: str) -> NetworkModel:
        """Look a profile up by its name (case-insensitive)."""
        profiles = {
            "loopback": cls.LOOPBACK,
            "lan": cls.LAN,
            "wan": cls.WAN,
        }
        try:
            return profiles[name.lower()]
        except KeyError:
            raise ChannelError(
                f"unknown network profile {name!r}; expected one of "
                f"{sorted(profiles)}"
            ) from None
