"""Additive-share arithmetic with Beaver triples.

A lightweight MP-SPDZ-style layer: values live as additive shares held
by two virtual parties; linear operations are local, multiplications
consume one Beaver triple and one round of openings. The secure
classifiers in this reproduction primarily use the Paillier-based
protocols (matching Bost et al.), but the share-based engine provides

* an alternative backend for dot products over shares,
* the substrate for property-based tests of SMC identities, and
* the reference point for the cost-model's share-based mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.beaver import BeaverTriple, TrustedDealer
from repro.crypto.secret_sharing import AdditiveSecretSharer, AdditiveShare
from repro.crypto.triples import TripleStore
from repro.smc.network import Channel
from repro.smc.protocol import Op


class ArithmeticError_(Exception):
    """Raised when the triple supply runs dry or shares mismatch."""


@dataclass
class SharedValue:
    """A value additively shared between the two engine parties."""

    share0: AdditiveShare
    share1: AdditiveShare

    def __add__(self, other) -> "SharedValue":
        if isinstance(other, SharedValue):
            return SharedValue(self.share0 + other.share0, self.share1 + other.share1)
        if isinstance(other, int):
            # Public constants fold into party 0's share by convention.
            return SharedValue(self.share0 + other, self.share1)
        return NotImplemented

    def __radd__(self, other) -> "SharedValue":
        return self.__add__(other)

    def __sub__(self, other) -> "SharedValue":
        if isinstance(other, SharedValue):
            return SharedValue(self.share0 - other.share0, self.share1 - other.share1)
        if isinstance(other, int):
            return SharedValue(self.share0 - other, self.share1)
        return NotImplemented

    def __mul__(self, scalar) -> "SharedValue":
        if not isinstance(scalar, int):
            return NotImplemented
        return SharedValue(self.share0 * scalar, self.share1 * scalar)

    def __rmul__(self, scalar) -> "SharedValue":
        return self.__mul__(scalar)


class ShareEngine:
    """Two-party share-based computation engine.

    Parameters
    ----------
    dealer:
        Source of Beaver triples (defaults to a fresh trusted dealer).
    channel:
        Accounted channel for the opening traffic; multiplications cost
        one round of cross-announcements.
    store:
        Optional :class:`~repro.crypto.triples.TripleStore`; when
        attached, multiplications drain precomputed triples from it
        (strictly -- an exhausted store raises) instead of dealing
        inline, modelling the offline/online split.
    """

    def __init__(
        self,
        dealer: Optional[TrustedDealer] = None,
        channel: Optional[Channel] = None,
        sharer: Optional[AdditiveSecretSharer] = None,
        store: Optional[TripleStore] = None,
    ) -> None:
        if dealer is None:
            dealer = (
                TrustedDealer(sharer=sharer)
                if store is None
                else store.dealer
            )
        self._dealer = dealer
        self._sharer = sharer or AdditiveSecretSharer(modulus=dealer.modulus)
        if self._dealer.modulus != self._sharer.modulus:
            raise ArithmeticError_("dealer and sharer moduli differ")
        if store is not None and store.modulus != self._sharer.modulus:
            raise ArithmeticError_("store and sharer moduli differ")
        self._store = store
        self.channel = channel or Channel()

    @property
    def modulus(self) -> int:
        """The ring all shared values live in."""
        return self._sharer.modulus

    def input(self, value: int) -> SharedValue:
        """Secret-share a fresh input value."""
        shares = self._sharer.share(value)
        return SharedValue(share0=shares[0], share1=shares[1])

    def open(self, value: SharedValue) -> int:
        """Reconstruct a shared value (both parties announce shares)."""
        self.channel.client_sends(value.share0.value)
        self.channel.server_sends(value.share1.value)
        return self._sharer.reconstruct([value.share0, value.share1])

    def multiply(self, x: SharedValue, y: SharedValue) -> SharedValue:
        """Beaver multiplication: one triple, one opening round.

        Computes ``z = x * y`` from the identity
        ``z = c + e*b + d*a + e*d`` with ``e = x - a`` and ``d = y - b``
        opened in public.

        With a :class:`~repro.crypto.triples.TripleStore` attached the
        triple is drained from the precomputed stock (raising
        :class:`~repro.crypto.triples.TripleStoreExhaustedError` when
        dry); otherwise the dealer produces it inline.
        """
        if self._store is not None:
            firsts, seconds = self._store.take_triples(1)
            triple0, triple1 = firsts[0], seconds[0]
        else:
            triple0, triple1 = self._dealer.triple()
        self.channel.trace.count(Op.SHARE_MUL_TRIPLE)

        e_shared = SharedValue(x.share0 - triple0.a, x.share1 - triple1.a)
        d_shared = SharedValue(y.share0 - triple0.b, y.share1 - triple1.b)
        e = self.open(e_shared)
        d = self.open(d_shared)

        modulus = self.modulus
        z0 = (triple0.c.value + e * triple0.b.value + d * triple0.a.value
              + e * d) % modulus
        z1 = (triple1.c.value + e * triple1.b.value + d * triple1.a.value) % modulus
        return SharedValue(
            share0=AdditiveShare(z0, modulus),
            share1=AdditiveShare(z1, modulus),
        )

    def dot_product(
        self, xs: Sequence[SharedValue], ys: Sequence[SharedValue]
    ) -> SharedValue:
        """Shared inner product; one multiplication per component."""
        if len(xs) != len(ys):
            raise ArithmeticError_(f"length mismatch: {len(xs)} vs {len(ys)}")
        if not xs:
            return self.input(0)
        accumulator = self.multiply(xs[0], ys[0])
        for x, y in zip(xs[1:], ys[1:]):
            accumulator = accumulator + self.multiply(x, y)
        return accumulator

    def linear_combination(
        self, values: Sequence[SharedValue], coefficients: Sequence[int]
    ) -> SharedValue:
        """Public-coefficient linear combination -- purely local."""
        if len(values) != len(coefficients):
            raise ArithmeticError_(
                f"length mismatch: {len(values)} vs {len(coefficients)}"
            )
        result = self.input(0)
        for value, coefficient in zip(values, coefficients):
            result = result + value * coefficient
        return result
