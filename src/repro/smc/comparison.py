"""Secure comparison protocols.

Two layers, mirroring Bost et al. (NDSS 2015):

1. :func:`dgk_compare` -- the DGK private-input comparison. The client
   holds ``x``, the server holds ``y``; afterwards the parties hold an
   XOR-sharing of the bit ``x < y``. Equality is handled by the Veugen
   doubling trick (comparing ``2x + 1`` against ``2y``, which are never
   equal), so the protocol is exact for all inputs.

2. :func:`compare_encrypted` -- the Veugen/Bost comparison over
   *encrypted* values: the server holds ``[z] = [2^l + a - b]`` under the
   client's Paillier key and ends up with an encryption of the bit
   ``a >= b`` without either party learning anything else. A variant,
   :func:`compare_encrypted_client_learns`, reveals the bit to the
   client instead (the form the argmax and hyperplane protocols need).

The bit-length parameter ``l`` bounds the compared magnitudes; all
protocol costs are linear in ``l``, which is exactly the lever the
paper's disclosure optimization pulls on (fewer hidden features =>
smaller intermediate values and fewer comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.dgk import DgkCiphertext
from repro.crypto.paillier import PaillierCiphertext
from repro.smc.arithmetic import SharedValue
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import Op, protocol_entry
from repro.smc.shares import ShareSession


class ComparisonError(Exception):
    """Raised on out-of-range comparison inputs."""


@dataclass(frozen=True)
class SharedBit:
    """An XOR-sharing of one bit between the two parties."""

    client_share: int
    server_share: int

    @property
    def value(self) -> int:
        """Reconstruct the plain bit (test/diagnostic use only)."""
        return self.client_share ^ self.server_share


def _bits_lsb_first(value: int, width: int) -> List[int]:
    """Decompose ``value`` into ``width`` bits, least significant first."""
    return [(value >> i) & 1 for i in range(width)]


@protocol_entry(span="dgk.compare")
def dgk_compare(
    ctx: TwoPartyContext, client_value: int, server_value: int, bit_length: int
) -> SharedBit:
    """DGK comparison of private inputs; returns XOR-shared ``x < y``.

    Parameters
    ----------
    ctx:
        Session context (client owns the DGK key).
    client_value:
        The client's private input ``x`` in ``[0, 2^bit_length)``.
    server_value:
        The server's private input ``y`` in ``[0, 2^bit_length)``.
    bit_length:
        Magnitude bound for both inputs.
    """
    upper = 1 << bit_length
    if not 0 <= client_value < upper:
        raise ComparisonError(
            f"client value {client_value} outside [0, 2^{bit_length})"
        )
    if not 0 <= server_value < upper:
        raise ComparisonError(
            f"server value {server_value} outside [0, 2^{bit_length})"
        )
    width = bit_length + 1
    u = ctx.dgk.public_key.u
    if 3 * (width + 2) >= u:
        raise ComparisonError(
            f"DGK plaintext space u={u} too small for {bit_length}-bit comparison"
        )

    # Veugen doubling: X = 2x + 1 vs Y = 2y are never equal, and
    # X < Y  <=>  x < y.
    x_padded = 2 * client_value + 1
    y_padded = 2 * server_value

    # Client: encrypt the bits of X under its DGK key and ship them.
    x_bits = _bits_lsb_first(x_padded, width)
    ctx.trace.count(Op.DGK_ENCRYPT, width)
    encrypted_bits = [
        ctx.dgk.public_key.encrypt(bit, rng=ctx.client_rng) for bit in x_bits
    ]
    # The comparison is a fresh protocol phase: its first message opens a
    # new round regardless of which party spoke last in the composition.
    ctx.channel.reset_direction()
    encrypted_bits = ctx.channel.client_sends(encrypted_bits)

    # Server: build the blinded difference terms.
    y_bits = _bits_lsb_first(y_padded, width)
    server_share = ctx.server_rng.randbelow(2)
    sign = 1 - 2 * server_share  # +1 when share 0, -1 when share 1

    # xor_i = x_i XOR y_i, computed homomorphically from plaintext y_i.
    xor_terms: List[DgkCiphertext] = []
    for enc_bit, y_bit in zip(encrypted_bits, y_bits):
        if y_bit:
            ctx.trace.count(Op.DGK_ADD)
            xor_terms.append((-enc_bit) + 1)
        else:
            xor_terms.append(enc_bit)

    # Suffix sums w_i = sum_{j > i} xor_j, built most-significant first.
    suffix: List[DgkCiphertext] = [None] * width  # type: ignore[list-item]
    running = ctx.dgk.public_key.encrypt(0, rng=ctx.server_rng)
    ctx.trace.count(Op.DGK_ENCRYPT)
    for i in range(width - 1, -1, -1):
        suffix[i] = running
        ctx.trace.count(Op.DGK_ADD)
        running = running + xor_terms[i]

    blinded: List[DgkCiphertext] = []
    for i in range(width):
        # c_i = x_i - y_i + sign + 3 * w_i, multiplicatively blinded.
        ctx.trace.count(Op.DGK_ADD, 2)
        ctx.trace.count(Op.DGK_SCALAR_MUL, 2)
        c_i = encrypted_bits[i] + (-y_bits[i] + sign) + suffix[i] * 3
        rho = 1 + ctx.server_rng.randbelow(u - 1)
        blinded.append(c_i * rho)
    ctx.server_rng.shuffle(blinded)
    blinded = ctx.channel.server_sends(blinded)

    # Client: a zero among the terms decides the (share-flipped) outcome.
    ctx.trace.count(Op.DGK_ZERO_TEST, len(blinded))
    found_zero = any(ctx.dgk.private_key.is_zero(c) for c in blinded)
    return SharedBit(client_share=int(found_zero), server_share=server_share)


@protocol_entry(span="dgk.encrypted_z_bit")
def _encrypted_z_bit(
    ctx: TwoPartyContext, z_encrypted: PaillierCiphertext, bit_length: int
) -> Tuple[int, int, SharedBit, int]:
    """Common blinding phase of both encrypted-comparison variants.

    The server blinds ``[z]`` additively, the client decrypts the blind,
    and a DGK comparison on the low ``bit_length`` bits produces the
    borrow. Returns ``(d_high, r_high, borrow, r)`` where the target bit
    is ``d_high - r_high - borrow``.
    """
    modulus_mask = (1 << bit_length) - 1

    # Server: additive blinding with statistical noise. Entry point of
    # both encrypted-comparison variants, so it owns the phase reset.
    noise = ctx.blinding_noise(bit_length + 1)
    ctx.trace.count(Op.PAILLIER_ADD)
    blinded = z_encrypted + noise
    ctx.channel.reset_direction()
    blinded = ctx.channel.server_sends(ctx.rerandomize(blinded))

    # Client: decrypt the blinded value and split it.
    revealed = ctx.client_decrypt(blinded)
    d_low = revealed & modulus_mask
    d_high = revealed >> bit_length

    r_low = noise & modulus_mask
    r_high = noise >> bit_length

    borrow = dgk_compare(ctx, d_low, r_low, bit_length)
    return d_high, r_high, borrow, noise


@protocol_entry(span="compare.encrypted")
def compare_encrypted(
    ctx: TwoPartyContext, z_encrypted: PaillierCiphertext, bit_length: int
) -> PaillierCiphertext:
    """Server-held ``[z]`` with ``z`` in ``[0, 2^(l+1))`` -> server-held
    encryption of ``z >> l`` (a single bit).

    To compare ``l``-bit values ``a, b``, call with
    ``[z] = [2^l + a - b]``; the output bit is ``a >= b``.
    """
    d_high, r_high, borrow, _ = _encrypted_z_bit(ctx, z_encrypted, bit_length)

    # Client ships its half of the correction under Paillier.
    d_high_enc = ctx.client_encrypt(d_high)
    borrow_client_enc = ctx.client_encrypt(borrow.client_share)
    ctx.channel.reset_direction()
    d_high_enc, borrow_client_enc = ctx.channel.client_sends(
        [d_high_enc, borrow_client_enc]
    )

    # Server reassembles borrow = client_share XOR server_share linearly.
    # The share is the server's own coin flip (SharedBit is secret-coarse
    # in the taint model); branching on it reveals nothing about z.
    # repro: allow[branch-on-secret]
    if borrow.server_share:
        ctx.trace.count(Op.PAILLIER_SCALAR_MUL)
        ctx.trace.count(Op.PAILLIER_ADD)
        borrow_enc = (borrow_client_enc * -1) + 1
    else:
        borrow_enc = borrow_client_enc
    ctx.trace.count(Op.PAILLIER_ADD, 2)
    return d_high_enc - r_high - borrow_enc


@protocol_entry(span="compare.encrypted_client_learns")
def compare_encrypted_client_learns(
    ctx: TwoPartyContext, z_encrypted: PaillierCiphertext, bit_length: int
) -> int:
    """Like :func:`compare_encrypted` but the *client* learns the bit.

    The server reveals its blinding quotient and borrow share, letting
    the client -- and only the client -- reconstruct ``z >> l``. Used
    where the protocol's output is destined for the client anyway
    (hyperplane sign test, argmax over permuted candidates).
    """
    d_high, r_high, borrow, _ = _encrypted_z_bit(ctx, z_encrypted, bit_length)
    ctx.channel.reset_direction()
    # Designed disclosure: this variant exists so the *client* learns the
    # bit. r_high is the server's own blinding quotient and server_share
    # its own coin flip -- server-chosen randomness, not z-derived data
    # (the taint model cannot see through SharedBit's object coarseness).
    # repro: allow[channel-leak]
    r_high_sent, server_share_sent = ctx.channel.server_sends(
        [r_high, borrow.server_share]
    )
    bit = d_high - r_high_sent - (borrow.client_share ^ server_share_sent)
    # The reconstructed bit is the protocol's output for the client;
    # validating it is the point.
    # repro: allow[branch-on-secret]
    if bit not in (0, 1):
        raise ComparisonError(
            f"comparison reconstruction produced {bit}; inputs exceeded "
            f"the declared bit length {bit_length}"
        )
    return bit


@protocol_entry(span="dgk.compare_many")
def dgk_compare_many(
    ctx: TwoPartyContext,
    pairs: Sequence[Tuple[int, int]],
    bit_length: int,
) -> List[SharedBit]:
    """Batched DGK comparisons: all instances share one round trip.

    Each element of ``pairs`` is ``(client_value, server_value)``; the
    result list holds one XOR-shared ``x < y`` bit per pair. The
    operation counts equal ``len(pairs)`` sequential runs, but the
    transcript is exactly two messages -- the round structure the
    original batched implementations use, and what makes deep residual
    trees viable over WAN.
    """
    upper = 1 << bit_length
    width = bit_length + 1
    u = ctx.dgk.public_key.u
    if 3 * (width + 2) >= u:
        raise ComparisonError(
            f"DGK plaintext space u={u} too small for {bit_length}-bit "
            f"comparison"
        )
    for client_value, server_value in pairs:
        if not 0 <= client_value < upper or not 0 <= server_value < upper:
            raise ComparisonError(
                f"comparison inputs outside [0, 2^{bit_length})"
            )
    if not pairs:
        return []

    # Client: one message carrying every instance's encrypted bits.
    all_bits: List[List[DgkCiphertext]] = []
    for client_value, _ in pairs:
        x_padded = 2 * client_value + 1
        ctx.trace.count(Op.DGK_ENCRYPT, width)
        all_bits.append(
            [ctx.dgk.public_key.encrypt(bit, rng=ctx.client_rng)
             for bit in _bits_lsb_first(x_padded, width)]
        )
    ctx.channel.reset_direction()
    all_bits = ctx.channel.client_sends(all_bits)

    # Server: one message with every instance's blinded terms.
    shares: List[int] = []
    all_blinded: List[List[DgkCiphertext]] = []
    for (_, server_value), encrypted_bits in zip(pairs, all_bits):
        y_bits = _bits_lsb_first(2 * server_value, width)
        share = ctx.server_rng.randbelow(2)
        shares.append(share)
        sign = 1 - 2 * share

        xor_terms: List[DgkCiphertext] = []
        for enc_bit, y_bit in zip(encrypted_bits, y_bits):
            if y_bit:
                ctx.trace.count(Op.DGK_ADD)
                xor_terms.append((-enc_bit) + 1)
            else:
                xor_terms.append(enc_bit)

        suffix: List[DgkCiphertext] = [None] * width  # type: ignore
        running = ctx.dgk.public_key.encrypt(0, rng=ctx.server_rng)
        ctx.trace.count(Op.DGK_ENCRYPT)
        for i in range(width - 1, -1, -1):
            suffix[i] = running
            ctx.trace.count(Op.DGK_ADD)
            running = running + xor_terms[i]

        blinded: List[DgkCiphertext] = []
        for i in range(width):
            ctx.trace.count(Op.DGK_ADD, 2)
            ctx.trace.count(Op.DGK_SCALAR_MUL, 2)
            c_i = encrypted_bits[i] + (-y_bits[i] + sign) + suffix[i] * 3
            rho = 1 + ctx.server_rng.randbelow(u - 1)
            blinded.append(c_i * rho)
        ctx.server_rng.shuffle(blinded)
        all_blinded.append(blinded)
    all_blinded = ctx.channel.server_sends(all_blinded)

    # Client: zero-test everything locally.
    results: List[SharedBit] = []
    for blinded, share in zip(all_blinded, shares):
        ctx.trace.count(Op.DGK_ZERO_TEST, len(blinded))
        found_zero = any(ctx.dgk.private_key.is_zero(c) for c in blinded)
        results.append(SharedBit(client_share=int(found_zero),
                                 server_share=share))
    return results


@protocol_entry(span="compare.encrypted_many")
def compare_encrypted_many(
    ctx: TwoPartyContext,
    z_encrypted: Sequence[PaillierCiphertext],
    bit_length: int,
) -> List[PaillierCiphertext]:
    """Batched :func:`compare_encrypted`: the whole batch costs four
    rounds instead of four per instance.

    The server ends with one encryption of ``z_i >> bit_length`` per
    input ciphertext.
    """
    if not z_encrypted:
        return []
    modulus_mask = (1 << bit_length) - 1

    # Server: blind every instance, one message.
    noises = []
    blinded_batch = []
    for z in z_encrypted:
        noise = ctx.blinding_noise(bit_length + 1)
        noises.append(noise)
        ctx.trace.count(Op.PAILLIER_ADD)
        blinded_batch.append(ctx.rerandomize(z + noise))
    ctx.channel.reset_direction()
    blinded_batch = ctx.channel.server_sends(blinded_batch)

    # Client: decrypt and split every instance.
    revealed = [ctx.client_decrypt(c) for c in blinded_batch]
    d_lows = [value & modulus_mask for value in revealed]
    d_highs = [value >> bit_length for value in revealed]
    r_lows = [noise & modulus_mask for noise in noises]
    r_highs = [noise >> bit_length for noise in noises]

    # The d_low bits enter the batched DGK comparison, which ships them
    # only DGK-encrypted (and the server's replies multiplicatively
    # blinded). The per-parameter summary proves this for dgk_compare;
    # here client and server values share one `pairs` parameter, which
    # is coarser than the taint model can split.
    # repro: allow[channel-leak]
    borrows = dgk_compare_many(
        ctx, list(zip(d_lows, r_lows)), bit_length
    )

    # Client: one message with every instance's correction ciphertexts.
    uploads = []
    for d_high, borrow in zip(d_highs, borrows):
        uploads.append(ctx.client_encrypt(d_high))
        uploads.append(ctx.client_encrypt(borrow.client_share))
    ctx.channel.reset_direction()
    uploads = ctx.channel.client_sends(uploads)

    results: List[PaillierCiphertext] = []
    for index, (borrow, r_high) in enumerate(zip(borrows, r_highs)):
        d_high_enc = uploads[2 * index]
        borrow_client_enc = uploads[2 * index + 1]
        # Server's own coin flip, as in compare_encrypted above.
        # repro: allow[branch-on-secret]
        if borrow.server_share:
            ctx.trace.count(Op.PAILLIER_SCALAR_MUL)
            ctx.trace.count(Op.PAILLIER_ADD)
            borrow_enc = (borrow_client_enc * -1) + 1
        else:
            borrow_enc = borrow_client_enc
        ctx.trace.count(Op.PAILLIER_ADD, 2)
        results.append(d_high_enc - r_high - borrow_enc)
    return results


@protocol_entry(span="compare.values_encrypted")
def compare_values_encrypted(
    ctx: TwoPartyContext,
    a_encrypted: PaillierCiphertext,
    b_encrypted: PaillierCiphertext,
    bit_length: int,
) -> PaillierCiphertext:
    """Convenience: server holds ``[a]`` and ``[b]`` (``l``-bit values);
    returns server-held ``[a >= b]``."""
    ctx.trace.count(Op.PAILLIER_ADD, 2)
    z = a_encrypted - b_encrypted + (1 << bit_length)
    return compare_encrypted(ctx, z, bit_length)


@protocol_entry(span="compare.sign_test")
def sign_test_client_learns(
    ctx: TwoPartyContext,
    score_encrypted: PaillierCiphertext,
    magnitude_bits: int,
) -> int:
    """Client learns whether a server-held encrypted signed score is
    ``>= 0``. ``magnitude_bits`` bounds ``|score|``."""
    ctx.trace.count(Op.PAILLIER_ADD)
    z = score_encrypted + (1 << magnitude_bits)
    return compare_encrypted_client_learns(ctx, z, magnitude_bits)


# -- share-based comparison (the shares backend's sign test) -----------------
#
# Dealer-assisted statistical comparison over additive shares: for a
# shared ``z`` with ``|z| < 2^l``, set ``t = z + 2^l`` (so the target
# bit ``z >= 0`` is exactly ``t >> l``) and open ``m = t + r`` where
# ``r`` is a dealer-dealt mask uniform over ``[0, 2^(l+1+kappa))`` --
# the opening is within ``2^-kappa`` of uniform, the same statistical
# guarantee class as the Paillier path's blinding noise. Writing both
# ``m`` and ``r`` as ``high * 2^l + low``,
#
#     t >> l  =  (m >> l) - (r >> l) - borrow,
#     borrow  =  (m mod 2^l < r mod 2^l),
#
# and the borrow is a bit circuit over the *shared* bits of ``r``
# against the *public* bits of ``m``: XOR with a public bit is linear,
# suffix equality-products cost one Beaver multiplication per bit, and
# the strictly-greater terms are mutually exclusive so their sum is the
# OR. Triple consumption is data-independent (``max(l-2,0) + l`` per
# comparison) so analytic costing is exact.


def _share_z_bit(
    session: ShareSession, z: SharedValue, bit_length: int
) -> SharedValue:
    """Shared ``z`` with ``|z| < 2^bit_length`` -> shared bit ``z >= 0``.

    The result stays additively shared, so callers can keep composing
    (argmax multiplexing) or reveal to one party only. Consumes one
    comparison mask and ``max(l-2, 0) + l`` Beaver triples.
    """
    l = bit_length
    if l < 1:
        raise ComparisonError(f"bit length must be positive, got {l}")
    t = z + (1 << l)
    masks0, masks1 = session.store.take_masks(1, l, fallback=True)
    mask0, mask1 = masks0[0], masks1[0]

    # Open m = t + r: statistically masked, public by design.
    m_shared = SharedValue(t.share0 + mask0.r, t.share1 + mask1.r)
    m = session.open_batch([m_shared])[0]
    m_high = m >> l
    m_bits = [(m >> i) & 1 for i in range(l)]

    r_bits = [
        SharedValue(mask0.r_low_bits[i], mask1.r_low_bits[i])
        for i in range(l)
    ]
    # eq_i = 1 - (r_i XOR m_i); XOR against a public bit is linear.
    eqs = [
        r_bits[i] if m_bits[i] else (r_bits[i] * -1) + 1
        for i in range(l)
    ]

    # prefix[i] = prod_{j > i} eq_j, built most-significant first.
    prefixes: List[SharedValue] = [None] * l  # type: ignore[list-item]
    prefixes[l - 1] = session.constant(1)
    if l >= 2:
        running = eqs[l - 1]
        for i in range(l - 2, 0, -1):
            prefixes[i] = running
            running = session.multiply_batch([running], [eqs[i]])[0]
        prefixes[0] = running

    # term_i = r_i * prefix_i, multiplied for *every* i (one batch) so
    # triple consumption never depends on the public opening's bits;
    # only terms at positions with m_i = 0 enter the borrow.
    products = session.multiply_batch(r_bits, prefixes)
    borrow = session.constant(0)
    for i in range(l):
        if m_bits[i] == 0:
            borrow = borrow + products[i]

    r_high = SharedValue(mask0.r_high, mask1.r_high)
    return ((r_high + borrow) * -1) + m_high


@protocol_entry(span="compare.share_values")
def share_compare_shared(
    session: ShareSession,
    a: SharedValue,
    b: SharedValue,
    bit_length: int,
) -> SharedValue:
    """Shared ``a``, ``b`` (``|a|, |b| < 2^(bit_length-1)``) -> shared
    bit ``a >= b``; nothing is revealed to either party."""
    session.ctx.channel.reset_direction()
    return _share_z_bit(session, a - b, bit_length)


@protocol_entry(span="compare.share_sign_test")
def share_sign_test_client_learns(
    session: ShareSession,
    score: SharedValue,
    magnitude_bits: int,
) -> int:
    """Share-backend sign test: client learns whether a shared signed
    score is ``>= 0``. ``magnitude_bits`` bounds ``|score|``.

    The mirror of :func:`sign_test_client_learns`: same output, same
    recipient, but the online work is ring arithmetic over precomputed
    triples instead of Paillier/DGK operations.
    """
    session.ctx.channel.reset_direction()
    shared_bit = _share_z_bit(session, score, magnitude_bits)
    session.ctx.channel.reset_direction()
    bit = session.reveal_to_client(shared_bit, signed=False)
    # The reconstructed bit is the protocol's output for the client;
    # validating it is the point.
    # repro: allow[branch-on-secret]
    if bit not in (0, 1):
        raise ComparisonError(
            f"share comparison reconstruction produced {bit}; inputs "
            f"exceeded the declared bit length {magnitude_bits}"
        )
    return bit
