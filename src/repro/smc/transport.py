"""Pluggable two-party transports: in-process and real TCP sockets.

The protocols in this library are written as straight-line two-party
computations driven through an accounted :class:`~repro.smc.network.Channel`.
This module makes the *wire* under that channel real and pluggable:

* :class:`InProcessTransport` -- the payload is round-tripped through
  the canonical codec (:mod:`repro.smc.wire`) in the same address
  space. No sockets, but every message is genuinely encoded and
  decoded, so codec fidelity is load-bearing even in-process.
* :class:`TcpTransport` -- every channel message is framed and shipped
  over a localhost/LAN TCP socket to a *peer process* (the remote
  endpoint of the wire), which decodes it, re-encodes it canonically
  and returns it. The protocol then computes on data that physically
  crossed the network, and both endpoints independently measure the
  frame bytes, which must equal the trace accounting exactly.

On top of the message transports sits the deployment serving path:
:func:`serve_deployment` runs a classification server -- since PR 5 a
thin wrapper over the concurrent, fault-isolated
:class:`repro.serving.ClassificationServer` runtime -- that loads a
deployment bundle and serves live hybrid queries over a socket;
:func:`request_classification` is the matching *client process* side.
Each query's protocol messages all cross the socket between the two
processes, and the client gets back the label plus the server's trace
accounting together with its own independent byte counts.

Failure semantics: connects and reads are bounded by timeouts; transient
connection failures (refused connects, connections dropped mid-protocol)
are retried with exponential backoff up to a bounded attempt budget;
anything that exhausts the budget or hits a hard timeout raises
:class:`TransportError` -- no hung processes, no silent corruption. A
server that *rejects* a request (overload, bad request, deadline, an
internal handler failure) answers a ``KIND_ERROR`` frame, which the
client raises as a typed :class:`ServerError` carrying the machine
-readable code.
"""

from __future__ import annotations

import multiprocessing
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.telemetry as telemetry
from repro.crypto.rand import secure_rng
from repro.smc import wire
from repro.smc.network import Direction

_LOCALHOST = "127.0.0.1"


class TransportError(Exception):
    """Raised when a transport cannot deliver a message."""


class ServerError(TransportError):
    """A classification server answered with a ``KIND_ERROR`` frame.

    The server reported a request-level failure instead of a result.
    ``code`` is machine-readable and stable for retry policy:
    ``"overloaded"`` (shed at admission -- retry with backoff),
    ``"bad-request"`` (malformed payload -- do not retry),
    ``"deadline"`` (the request exceeded the server's per-request
    timeout) and ``"internal"`` (a handler fault; the server itself
    kept serving). ``message`` is a sanitized human-readable sentence
    and ``request_id`` the server-assigned id of the failed request.

    Example::

        try:
            request_classification(host, port, row=[1, 2], seed=7)
        except ServerError as error:
            if error.code == "overloaded":
                ...  # back off and retry
    """

    def __init__(self, code: str, message: str, request_id: str = "") -> None:
        super().__init__(f"server error [{code}] {message}")
        self.code = code
        self.message = message
        self.request_id = request_id


@dataclass(frozen=True)
class TransportConfig:
    """Timeout and retry policy for socket transports.

    Attributes
    ----------
    connect_timeout:
        Seconds allowed for one TCP connect attempt.
    io_timeout:
        Seconds allowed for one blocking send/receive. A hard timeout is
        not retried: the peer is alive-but-stuck, and retrying would
        just hang for longer.
    retries:
        Additional attempts after the first on *transient* failures
        (connection refused, connection dropped mid-exchange).
    backoff_seconds:
        Initial retry delay window; doubles per retry. Each retry
        actually sleeps a uniform *full jitter* draw from
        ``[0, window]`` so shed clients do not re-dial in lockstep.
    """

    connect_timeout: float = 5.0
    io_timeout: float = 30.0
    retries: int = 3
    backoff_seconds: float = 0.05


#: Non-secret randomness for retry jitter. OS-entropy backed so client
#: processes forked from a common parent still desynchronise, but never
#: used for anything cryptographic.
_BACKOFF_RNG = secure_rng()


def _backoff_sleep(delay: float) -> None:
    """Sleep a *full-jitter* backoff: uniform in ``[0, delay]``.

    A shed burst disconnects every client at the same instant; without
    jitter they all re-dial in lockstep after exactly ``delay`` seconds
    and hammer the frontend again (thundering herd). Full jitter spreads
    the redials across the whole window while the caller keeps doubling
    ``delay``, so the attempt budget and the worst-case wait both stand.
    """
    time.sleep(_BACKOFF_RNG.uniform(0.0, delay))


@dataclass
class TransportStats:
    """Per-direction frame accounting measured by a transport endpoint."""

    frames: int = 0
    bytes_client_to_server: int = 0
    bytes_server_to_client: int = 0

    @property
    def total_bytes(self) -> int:
        """Measured frame bytes across both directions."""
        return self.bytes_client_to_server + self.bytes_server_to_client

    def record(self, direction: Direction, frame_bytes: int) -> None:
        """Attribute one measured frame to its logical direction."""
        self.frames += 1
        if direction is Direction.CLIENT_TO_SERVER:
            self.bytes_client_to_server += frame_bytes
        else:
            self.bytes_server_to_client += frame_bytes


class InProcessTransport:
    """Codec round-trip in the same address space.

    The cheapest backend that still exercises the canonical encoding on
    every message: ``decode(encode(payload))`` replaces the payload, so
    any codec infidelity breaks classification rather than hiding
    behind object identity.
    """

    def __init__(self, codec: wire.WireCodec) -> None:
        self.codec = codec
        self.stats = TransportStats()
        self.last_frame_bytes = 0

    def exchange(self, direction: Direction, payload: Any) -> Any:
        """Encode, "ship" (in-process), decode and return the payload."""
        body = wire.encode(payload)
        self.last_frame_bytes = wire.FRAME_OVERHEAD + len(body)
        self.stats.record(direction, self.last_frame_bytes)
        return self.codec.decode(body)

    def close(self) -> None:
        """Nothing to release."""


class TcpTransport:
    """Channel transport backed by a real TCP connection to a peer.

    Parameters
    ----------
    host / port:
        The wire peer's listening address (see :func:`start_wire_peer`).
    codec:
        Codec holding the session's public keys; its keyring is sent to
        the peer at handshake so both endpoints decode identically.
    config:
        Timeout/retry policy.
    sock:
        An already-connected socket to adopt instead of dialing out
        (used by the serving path, where the server answers on the
        connection the client opened). Adopted sockets skip the keyring
        handshake unless ``handshake`` is true.
    """

    def __init__(
        self,
        host: str = _LOCALHOST,
        port: int = 0,
        codec: wire.WireCodec = wire.WireCodec(),
        config: TransportConfig = TransportConfig(),
        sock: Optional[socket.socket] = None,
        handshake: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.codec = codec
        self.config = config
        self.stats = TransportStats()
        self.last_frame_bytes = 0
        self._sock: Optional[socket.socket] = sock
        self._adopted = sock is not None
        if sock is not None:
            sock.settimeout(config.io_timeout)
            if handshake:
                self._send_keyring(sock)
        self._closed = False

    # -- connection management ------------------------------------------

    def _send_keyring(self, sock: socket.socket) -> None:
        keyring = wire.keyring_payload(
            paillier=self.codec.paillier, dgk=self.codec.dgk, gm=self.codec.gm
        )
        wire.send_frame(sock, wire.KIND_KEYS, wire.encode(keyring))

    def _connect(self) -> socket.socket:
        """Dial the peer with bounded retry-with-backoff."""
        delay = self.config.backoff_seconds
        last_error: Optional[Exception] = None
        for attempt in range(self.config.retries + 1):
            if attempt:
                telemetry.count("transport.connect_retries")
                _backoff_sleep(delay)
                delay *= 2
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.config.connect_timeout
                )
                sock.settimeout(self.config.io_timeout)
                self._send_keyring(sock)
                return sock
            except (ConnectionError, socket.timeout, OSError) as error:
                last_error = error
        raise TransportError(
            f"could not connect to wire peer at {self.host}:{self.port} "
            f"after {self.config.retries + 1} attempts: {last_error}"
        )

    def _ensure_sock(self) -> socket.socket:
        if self._closed:
            raise TransportError("transport is closed")
        if self._sock is None:
            self._sock = self._connect()
        return self._sock

    def _drop_sock(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    # -- the transport contract -----------------------------------------

    def exchange(self, direction: Direction, payload: Any) -> Any:
        """Ship one protocol message across the socket and back.

        The peer decodes the frame and answers with its canonical
        re-encoding; the returned payload is the decode of that reply,
        so every value the protocol computes on has survived a real
        encode -> wire -> decode -> encode -> wire -> decode cycle.
        Frame sizes are verified on both legs.
        """
        body = wire.encode(payload)
        frame_bytes = wire.FRAME_OVERHEAD + len(body)
        delay = self.config.backoff_seconds
        last_error: Optional[Exception] = None
        for attempt in range(self.config.retries + 1):
            if attempt:
                telemetry.count("transport.retries")
                _backoff_sleep(delay)
                delay *= 2
            try:
                sock = self._ensure_sock()
                wire.send_frame(sock, wire.KIND_MSG, body)
                kind, reply = wire.recv_frame(sock)
            except socket.timeout as error:
                # A hard timeout means the peer is stuck, not gone;
                # retrying would hang for another full window.
                self._drop_sock()
                raise TransportError(
                    f"timed out after {self.config.io_timeout}s waiting "
                    f"for the wire peer"
                ) from error
            except (ConnectionError, wire.WireError, OSError) as error:
                # Dropped connection: reconnect (fresh handshake) and
                # resend. The exchange is a pure function of the frame,
                # so resending is idempotent.
                telemetry.count("transport.reconnects")
                last_error = error
                self._drop_sock()
                continue
            if kind != wire.KIND_MSG:
                raise TransportError(
                    f"wire peer answered frame kind 0x{kind:02X}, "
                    f"expected a mirrored message"
                )
            if reply != body:
                raise TransportError(
                    "wire peer's canonical re-encoding differs from the "
                    "sent frame; codec is not canonical"
                )
            self.last_frame_bytes = frame_bytes
            self.stats.record(direction, frame_bytes)
            return self.codec.decode(reply)
        raise TransportError(
            f"exchange failed after {self.config.retries + 1} attempts: "
            f"{last_error}"
        )

    def peer_stats(self) -> Dict[str, int]:
        """Ask the peer for its independent byte accounting."""
        sock = self._ensure_sock()
        try:
            wire.send_frame(sock, wire.KIND_STATS, wire.encode(None))
            kind, reply = wire.recv_frame(sock)
        except (ConnectionError, socket.timeout, OSError) as error:
            raise TransportError(f"stats request failed: {error}") from error
        if kind != wire.KIND_STATS:
            raise TransportError(f"unexpected stats reply kind 0x{kind:02X}")
        return self.codec.decode(reply)

    def close(self, shutdown_peer: bool = False) -> None:
        """Close the connection; optionally stop the peer process."""
        if self._sock is not None:
            try:
                kind = wire.KIND_SHUTDOWN if shutdown_peer else wire.KIND_CLOSE
                wire.send_frame(self._sock, kind, wire.encode(None))
            except OSError:  # pragma: no cover - peer may already be gone
                pass
        self._drop_sock()
        self._closed = True


TRANSPORT_BACKENDS = ("inproc", "tcp")


def make_transport(
    backend: str,
    codec: wire.WireCodec,
    host: str = _LOCALHOST,
    port: int = 0,
    config: TransportConfig = TransportConfig(),
):
    """Build a transport by backend name (``inproc`` or ``tcp``)."""
    if backend == "inproc":
        return InProcessTransport(codec)
    if backend == "tcp":
        return TcpTransport(host=host, port=port, codec=codec, config=config)
    raise TransportError(
        f"unknown transport backend {backend!r}; expected one of "
        f"{TRANSPORT_BACKENDS}"
    )


def attach_transport(ctx, transport) -> None:
    """Route a context's channel through ``transport``."""
    ctx.channel.transport = transport


# -- the wire peer process ---------------------------------------------------


def _serve_wire_connection(
    sock: socket.socket,
    codec_box: List[Optional[wire.WireCodec]],
    counters: Dict[str, int],
    drop_after: Optional[int],
) -> str:
    """Serve one accepted connection of the mirror peer.

    Returns ``"shutdown"`` when the client asked the peer to exit,
    ``"dropped"`` after an injected mid-protocol drop, else ``"closed"``.
    """
    while True:
        try:
            kind, body = wire.recv_frame(sock)
        except wire.WireError:
            return "closed"  # client went away; await the next connection
        if kind == wire.KIND_KEYS:
            codec_box[0] = wire.codec_from_keyring(
                wire.WireCodec().decode(body)
            )
            continue
        if kind == wire.KIND_MSG:
            counters["frames"] += 1
            counters["bytes_received"] += wire.FRAME_OVERHEAD + len(body)
            if drop_after is not None and counters["frames"] == drop_after \
                    and not counters.get("dropped"):
                # Fault injection: kill the connection mid-protocol,
                # exactly once. The peer keeps listening; a transport
                # with retry enabled reconnects and resends.
                counters["dropped"] = 1
                sock.close()
                return "dropped"
            codec = codec_box[0]
            if codec is None:
                return "closed"
            payload = codec.decode(body)
            reencoded = wire.encode(payload)
            counters["bytes_sent"] += wire.send_frame(
                sock, wire.KIND_MSG, reencoded
            )
            continue
        if kind == wire.KIND_STATS:
            wire.send_frame(sock, wire.KIND_STATS, wire.encode(dict(counters)))
            continue
        if kind == wire.KIND_CLOSE:
            return "closed"
        if kind == wire.KIND_SHUTDOWN:
            return "shutdown"
        return "closed"


def wire_peer_serve(
    listener: socket.socket, drop_after: Optional[int] = None
) -> None:
    """Accept loop of the mirror peer: decode every protocol frame,
    answer with its canonical re-encoding, keep independent byte counts.

    ``drop_after`` injects exactly one mid-protocol connection drop
    after that many mirrored frames (for fault-injection tests).
    """
    codec_box: List[Optional[wire.WireCodec]] = [None]
    counters: Dict[str, int] = {
        "frames": 0, "bytes_received": 0, "bytes_sent": 0
    }
    while True:
        try:
            sock, _ = listener.accept()
        except OSError:  # pragma: no cover - listener closed under us
            return
        with sock:
            outcome = _serve_wire_connection(
                sock, codec_box, counters, drop_after
            )
        if outcome == "shutdown":
            return


def _wire_peer_main(ready, drop_after: Optional[int]) -> None:
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((_LOCALHOST, 0))
    listener.listen(4)
    ready.send(listener.getsockname()[1])
    ready.close()
    with listener:
        wire_peer_serve(listener, drop_after=drop_after)


def start_wire_peer(
    drop_after: Optional[int] = None,
) -> Tuple[multiprocessing.Process, int]:
    """Launch the mirror peer in a separate process.

    Returns ``(process, port)``; the peer listens on localhost and runs
    until it receives a shutdown frame (or is terminated).
    """
    parent, child = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_wire_peer_main, args=(child, drop_after), daemon=True
    )
    process.start()
    child.close()
    port = parent.recv()
    parent.close()
    return process, port


# -- deployment serving over a socket ---------------------------------------


@dataclass
class ClassificationResult:
    """What the client process gets back from one served query.

    ``label`` is the classification; ``server_trace`` the server's full
    execution-trace summary (bytes, rounds, messages, wall time);
    ``client_stats`` the client's own independently measured frame and
    byte counts, which must agree with the server's accounting
    byte-for-byte; ``request_id`` the server-assigned id, matching the
    ``serve.request`` telemetry span on the server side.

    Example::

        result = request_classification("127.0.0.1", port, [2, 0, 1],
                                        seed=7)
        assert result.client_stats["bytes_received"] == \\
            result.server_trace["bytes_total"]
    """

    label: int
    server_trace: Dict[str, float]
    client_stats: Dict[str, int] = field(default_factory=dict)
    request_id: str = ""
    #: Budget-enforcement outcome, present only when the server runs a
    #: privacy-budget ledger: identity, granted/dropped disclosure,
    #: spent-before/after, mode (``full`` / ``degraded`` / ``smc``).
    budget: Optional[Dict] = None


def serve_deployment(
    deployed,
    listener: socket.socket,
    max_connections: Optional[int] = None,
    config=None,
) -> None:
    """Serve live hybrid classification queries over ``listener``.

    Per connection the protocol is:

    1. client sends a ``KIND_REQUEST`` frame:
       ``{"row": [...], "seed": int, "disclosure": [...] | None}``;
    2. the server derives the session keys from the seed (the client is
       the key owner in the Bost model; a shared seed keeps transcripts
       reproducible) and answers with a ``KIND_KEYS`` keyring frame;
    3. every protocol message of the classification crosses this socket
       as a ``KIND_MSG`` frame, mirrored by the client;
    4. the server finishes with a ``KIND_RESULT`` frame carrying the
       label and the full trace summary -- or a ``KIND_ERROR`` frame if
       the request was shed, malformed, timed out or crashed.

    Requests are served *concurrently* by the
    :class:`repro.serving.ClassificationServer` runtime; this function
    is the blocking convenience wrapper (build the server yourself for
    explicit lifecycle control). ``deployed`` is a
    :class:`repro.core.serialization.DeployedClassifier`; ``config`` an
    optional :class:`repro.core.session.SessionConfig` carrying
    ``max_workers`` / ``queue_depth`` / ``request_timeout_s``.

    Example::

        listener = socket.create_server(("127.0.0.1", 0))
        serve_deployment(deployed, listener, max_connections=8)
    """
    from repro.serving import ClassificationServer

    server = ClassificationServer(
        deployed, listener, config=config, max_connections=max_connections
    )
    server.serve_forever()


def _deployment_server_main(ready, bundle_path: str,
                            max_connections: Optional[int]) -> None:
    from repro.core.serialization import load_deployment

    deployed = load_deployment(bundle_path)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((_LOCALHOST, 0))
    listener.listen(4)
    ready.send(listener.getsockname()[1])
    ready.close()
    with listener:
        serve_deployment(deployed, listener, max_connections=max_connections)


def start_deployment_server(
    bundle_path: str, max_connections: Optional[int] = None
) -> Tuple[multiprocessing.Process, int]:
    """Launch a deployment-bundle classification server process.

    Returns ``(process, port)``. The server loads the bundle from
    ``bundle_path``, binds an ephemeral localhost port and serves
    concurrently (the :class:`repro.serving.ClassificationServer`
    runtime with default :class:`~repro.core.session.SessionConfig`
    knobs) until ``max_connections`` connections are handled (or
    forever when ``None``; send a shutdown frame or terminate the
    process to stop it). The test-suite and benchmark entry point for
    a real out-of-process server; production deployments use
    ``python -m repro serve``.

    Example::

        process, port = start_deployment_server("bundle.json",
                                                max_connections=1)
        result = request_classification("127.0.0.1", port, row, seed=7)
        process.join()
    """
    parent, child = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_deployment_server_main,
        args=(child, bundle_path, max_connections),
        daemon=True,
    )
    process.start()
    child.close()
    port = parent.recv()
    parent.close()
    return process, port


def request_classification(
    host: str,
    port: int,
    row: Sequence[int],
    seed: int,
    disclosure: Optional[Sequence[int]] = None,
    config: TransportConfig = TransportConfig(),
    pace_seconds: float = 0.0,
) -> ClassificationResult:
    """Client-process side of one served query.

    Connects to a :func:`serve_deployment` server, submits the query,
    mirrors every protocol frame (each crosses the socket physically),
    and returns the label plus both endpoints' byte accounting.

    ``pace_seconds`` sleeps before mirroring each protocol frame,
    simulating a remote client's per-round network latency (localhost
    round trips are otherwise unrealistically instant); the concurrency
    benchmark uses it to model WAN clients. A ``KIND_ERROR`` reply at
    any point raises :class:`ServerError` with the server's code.

    Example::

        result = request_classification("127.0.0.1", port, row=[3, 1],
                                        seed=11)
        print(result.label, result.server_trace["total_bytes"])
    """
    delay = config.backoff_seconds
    last_error: Optional[Exception] = None
    sock = None
    for attempt in range(config.retries + 1):
        if attempt:
            _backoff_sleep(delay)
            delay *= 2
        try:
            sock = socket.create_connection(
                (host, port), timeout=config.connect_timeout
            )
            break
        except (ConnectionError, socket.timeout, OSError) as error:
            last_error = error
    if sock is None:
        raise TransportError(
            f"could not reach classification server at {host}:{port}: "
            f"{last_error}"
        )
    sock.settimeout(config.io_timeout)
    request = {
        "row": [int(v) for v in row],
        "seed": int(seed),
        "disclosure": (
            [int(i) for i in disclosure] if disclosure is not None else None
        ),
    }
    stats: Dict[str, int] = {
        "frames": 0, "bytes_received": 0, "bytes_sent": 0
    }
    codec: Optional[wire.WireCodec] = None
    with sock:
        wire.send_frame(sock, wire.KIND_REQUEST, wire.encode(request))
        while True:
            try:
                kind, body = wire.recv_frame(sock)
            except socket.timeout as error:
                raise TransportError(
                    f"classification server timed out after "
                    f"{config.io_timeout}s"
                ) from error
            except wire.WireError as error:
                raise TransportError(
                    f"classification server dropped the connection: {error}"
                ) from error
            if kind == wire.KIND_KEYS:
                codec = wire.codec_from_keyring(wire.WireCodec().decode(body))
                continue
            if kind == wire.KIND_MSG:
                if codec is None:
                    raise TransportError(
                        "server sent protocol frames before its keyring"
                    )
                stats["frames"] += 1
                stats["bytes_received"] += wire.FRAME_OVERHEAD + len(body)
                payload = codec.decode(body)
                if pace_seconds > 0.0:
                    time.sleep(pace_seconds)
                stats["bytes_sent"] += wire.send_frame(
                    sock, wire.KIND_MSG, wire.encode(payload)
                )
                continue
            if kind == wire.KIND_ERROR:
                report = wire.WireCodec().decode(body)
                raise ServerError(
                    code=str(report.get("code", "internal")),
                    message=str(report.get("message", "")),
                    request_id=str(report.get("request_id", "")),
                )
            if kind == wire.KIND_RESULT:
                result = wire.WireCodec().decode(body)
                return ClassificationResult(
                    label=int(result["label"]),
                    server_trace=result["trace"],
                    client_stats=stats,
                    request_id=str(result.get("request_id", "")),
                    budget=result.get("budget"),
                )
            raise TransportError(
                f"unexpected frame kind 0x{kind:02X} from the server"
            )
