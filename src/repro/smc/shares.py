"""Two-party share-protocol session: the shares backend's online layer.

Where :mod:`repro.smc.arithmetic` is the property-test substrate for
share identities, this module is the *protocol-grade* layer the
``shares`` :class:`~repro.secure.backends.SharesBackend` runs on: every
sharing and opening crosses the accounted channel as tagged wire
elements (``TAG_SHARE``), openings are batched so a whole bank of
Beaver multiplications costs two messages, and every triple is drained
from the offline :class:`~repro.crypto.triples.TripleStore` -- the
online phase itself performs integer ring arithmetic only.

Conventions (matching :class:`~repro.smc.arithmetic.SharedValue`):
party 0 is the client, party 1 the server; public constants fold into
the client's share. Input sharing is dealer-free: the owner draws the
other party's share uniformly from its own session rng and keeps the
difference, so a single corrupted party learns nothing about the input.

The ring modulus is sized per session by :func:`modulus_bits_for`:
``magnitude_bits + kappa + 8`` bits, leaving statistical headroom for
the masked comparison openings of :mod:`repro.smc.comparison` (the
``+8`` margin keeps every opened ``m = t + r`` strictly inside the
ring).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.secret_sharing import AdditiveShare
from repro.crypto.triples import TripleStore
from repro.smc.arithmetic import SharedValue
from repro.smc.context import TwoPartyContext
from repro.smc.protocol import Op, protocol_entry


class ShareProtocolError(Exception):
    """Raised on invalid share-protocol usage or corrupted openings."""


#: Extra ring headroom beyond ``magnitude + kappa`` (see module doc).
MODULUS_MARGIN_BITS = 8


def modulus_bits_for(magnitude_bits: int, kappa: int) -> int:
    """Ring width for a session comparing ``magnitude_bits`` values at
    statistical security ``kappa``."""
    return magnitude_bits + kappa + MODULUS_MARGIN_BITS


class ShareSession:
    """One classification query's view of the share protocol.

    Wraps the session context (channel + rngs + trace) and the offline
    triple store; every method that crosses the wire does so through
    ``ctx.channel`` so bytes, messages and rounds are accounted -- and,
    with a transport attached, the shares genuinely cross a socket as
    ``TAG_SHARE`` elements.
    """

    def __init__(self, ctx: TwoPartyContext, store: TripleStore) -> None:
        self.ctx = ctx
        self.store = store
        self.modulus = store.modulus

    # -- local helpers -------------------------------------------------------

    def constant(self, value: int) -> SharedValue:
        """A public constant as a (deterministic) shared value."""
        modulus = self.modulus
        return SharedValue(
            share0=AdditiveShare(value % modulus, modulus),
            share1=AdditiveShare(0, modulus),
        )

    def _split(self, value: int, rng) -> tuple:
        """(own, other) uniform share pair of ``value`` drawn from the
        owner's rng."""
        modulus = self.modulus
        other = rng.randbelow(modulus)
        own = (value - other) % modulus
        return (
            AdditiveShare(own, modulus),
            AdditiveShare(other, modulus),
        )

    # -- input sharing -------------------------------------------------------

    def input_client(self, values: Sequence[int]) -> List[SharedValue]:
        """Client secret-shares its inputs; the server's share vector
        crosses the wire as one ``TAG_SHARE`` list."""
        pairs = [self._split(int(v), self.ctx.client_rng) for v in values]
        if pairs:
            delivered = self.ctx.channel.client_sends(
                [other for _, other in pairs]
            )
        else:
            delivered = []
        return [
            SharedValue(share0=own, share1=other)
            for (own, _), other in zip(pairs, delivered)
        ]

    def input_server(self, values: Sequence[int]) -> List[SharedValue]:
        """Server secret-shares its inputs (weights); the client's share
        vector crosses the wire as one ``TAG_SHARE`` list."""
        pairs = [self._split(int(v), self.ctx.server_rng) for v in values]
        if pairs:
            delivered = self.ctx.channel.server_sends(
                [other for _, other in pairs]
            )
        else:
            delivered = []
        return [
            SharedValue(share0=other, share1=own)
            for (own, _), other in zip(pairs, delivered)
        ]

    # -- openings ------------------------------------------------------------

    def open_batch(self, values: Sequence[SharedValue]) -> List[int]:
        """Open shared values to both parties (raw ring elements).

        Two messages for the whole batch: each party announces its
        share vector. Only values that are *designed* to be public
        (Beaver ``e``/``d`` differences, statistically masked
        comparison openings) may be opened this way.
        """
        if not values:
            return []
        client_half = self.ctx.channel.client_sends(
            [v.share0 for v in values]
        )
        server_half = self.ctx.channel.server_sends(
            [v.share1 for v in values]
        )
        modulus = self.modulus
        return [
            (c.value + s.value) % modulus
            for c, s in zip(client_half, server_half)
        ]

    def reveal_to_client(self, value: SharedValue, *, signed: bool = True) -> int:
        """Open a shared value to the client only.

        The server announces its share (one message); the client
        recombines locally, so the server learns nothing. ``signed``
        applies the centred decoding used for scores that may be
        negative.
        """
        server_share = self.ctx.channel.server_sends(value.share1)
        modulus = self.modulus
        raw = (value.share0.value + server_share.value) % modulus
        if signed and raw > modulus // 2:
            return raw - modulus
        return raw

    # -- multiplication ------------------------------------------------------

    def multiply_batch(
        self, xs: Sequence[SharedValue], ys: Sequence[SharedValue]
    ) -> List[SharedValue]:
        """Beaver-multiply componentwise, one opening round per batch.

        Drains ``len(xs)`` precomputed triples from the store (inline
        dealing surfaces as ``triples.misses``); all ``e = x - a`` and
        ``d = y - b`` differences are opened in a single two-message
        exchange regardless of batch size.
        """
        if len(xs) != len(ys):
            raise ShareProtocolError(
                f"length mismatch: {len(xs)} vs {len(ys)}"
            )
        if not xs:
            return []
        count = len(xs)
        firsts, seconds = self.store.take_triples(count, fallback=True)
        self.ctx.trace.count(Op.SHARE_MUL_TRIPLE, count)

        masked: List[SharedValue] = []
        for x, y, t0, t1 in zip(xs, ys, firsts, seconds):
            masked.append(SharedValue(x.share0 - t0.a, x.share1 - t1.a))
            masked.append(SharedValue(y.share0 - t0.b, y.share1 - t1.b))
        opened = self.open_batch(masked)

        modulus = self.modulus
        products: List[SharedValue] = []
        for i, (t0, t1) in enumerate(zip(firsts, seconds)):
            e, d = opened[2 * i], opened[2 * i + 1]
            z0 = (
                t0.c.value + e * t0.b.value + d * t0.a.value + e * d
            ) % modulus
            z1 = (t1.c.value + e * t1.b.value + d * t1.a.value) % modulus
            products.append(SharedValue(
                share0=AdditiveShare(z0, modulus),
                share1=AdditiveShare(z1, modulus),
            ))
        return products


@protocol_entry(span="shares.reveal")
def share_reveal_to_client(
    session: ShareSession, value: SharedValue, *, signed: bool = True
) -> int:
    """Protocol phase revealing one shared result to the client.

    Used by the regression path to hand the raw fixed-point score to
    the client; the server only ever sends its own uniformly random
    share, so nothing about the client's features leaks back.
    """
    session.ctx.channel.reset_direction()
    return session.reveal_to_client(value, signed=signed)
