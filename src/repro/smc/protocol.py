"""Execution traces: the accounting backbone of every protocol run.

Each protocol invocation records, into a shared :class:`ExecutionTrace`:

* counts of cryptographic operations (:class:`Op`),
* bytes sent in each direction and the number of communication rounds
  (recorded by :class:`repro.smc.network.Channel`),
* wall-clock time.

The analytic cost model (:mod:`repro.smc.cost_model`) converts a trace
into estimated runtime under arbitrary hardware and network profiles, so
benchmarks can report both live pure-Python timings and extrapolated
production timings from the *same* execution.
"""

from __future__ import annotations

import enum
import functools
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, TypeVar

import repro.telemetry as telemetry

_F = TypeVar("_F", bound=Callable)

#: Registry of functions marked with :func:`protocol_entry`, keyed by
#: ``module.qualname``. Tests and the static analyser use it to know
#: which functions own a protocol phase.
PROTOCOL_ENTRY_POINTS: Dict[str, Callable] = {}


def protocol_entry(func: Optional[_F] = None, *, span: Optional[str] = None):
    """Mark ``func`` as a protocol entry point.

    Entry points own a fresh protocol *phase*: their first channel
    message opens a new communication round regardless of which party
    spoke last in the surrounding composition, which they guarantee by
    calling ``channel.reset_direction()`` before their first direct
    send. The contract is enforced statically by the ``protocol-entry``
    rule of :mod:`repro.analysis` (functions that only delegate to
    other entry points pass trivially -- the callee resets).

    Entry points are also the telemetry span boundary: every invocation
    runs under a span named ``span`` (the ``telemetry-span`` lint rule
    requires the name to be declared explicitly inside the protocol
    packages, so the span taxonomy in ``docs/OBSERVABILITY.md`` is the
    single source of truth). While telemetry is disabled the wrapper
    costs one flag check per call -- the hot path stays flat.

    Usable bare (``@protocol_entry``; span name derived from the
    function name) or called (``@protocol_entry(span="dgk.compare")``).
    """

    def decorate(target: _F) -> _F:
        span_name = span or f"smc.{target.__name__.lstrip('_')}"

        @functools.wraps(target)
        def wrapper(*args, **kwargs):
            if not telemetry.enabled():
                return target(*args, **kwargs)
            with telemetry.span(span_name):
                return target(*args, **kwargs)

        wrapper.__protocol_entry__ = True
        wrapper.__protocol_span__ = span_name
        PROTOCOL_ENTRY_POINTS[
            f"{target.__module__}.{target.__qualname__}"
        ] = wrapper
        return wrapper  # type: ignore[return-value]

    if func is not None:
        return decorate(func)
    return decorate


class Op(enum.Enum):
    """Cryptographic operations tracked by the cost model."""

    PAILLIER_ENCRYPT = "paillier_encrypt"
    PAILLIER_DECRYPT = "paillier_decrypt"
    PAILLIER_ADD = "paillier_add"
    PAILLIER_SCALAR_MUL = "paillier_scalar_mul"
    PAILLIER_RERANDOMIZE = "paillier_rerandomize"
    DGK_ENCRYPT = "dgk_encrypt"
    DGK_ZERO_TEST = "dgk_zero_test"
    DGK_ADD = "dgk_add"
    DGK_SCALAR_MUL = "dgk_scalar_mul"
    GM_ENCRYPT = "gm_encrypt"
    GM_DECRYPT = "gm_decrypt"
    GM_XOR = "gm_xor"
    OT_TRANSFER_1OF2 = "ot_transfer_1of2"
    SHARE_MUL_TRIPLE = "share_mul_triple"
    SYMMETRIC_OP = "symmetric_op"


@dataclass
class ExecutionTrace:
    """Mutable record of one (or several composed) protocol executions.

    Traces are additive: running several protocols against the same trace
    accumulates their costs, which is how a full classification query
    (dot product + comparison + argmax) is accounted end to end.
    """

    ops: Counter = field(default_factory=Counter)
    bytes_client_to_server: int = 0
    bytes_server_to_client: int = 0
    messages: int = 0
    rounds: int = 0
    wall_seconds: float = 0.0
    label: str = ""

    def count(self, op: Op, times: int = 1) -> None:
        """Record ``times`` occurrences of ``op``.

        Mirrors every occurrence into the telemetry counters
        (``op.<name>``) while telemetry is enabled, so the metrics view
        of cryptographic work is charged from the same call sites as the
        cost model and cannot drift from it.
        """
        if times < 0:
            raise ValueError(f"cannot count a negative number of ops: {times}")
        self.ops[op] += times
        if telemetry.enabled():
            telemetry.count(f"op.{op.value}", times)

    @property
    def total_bytes(self) -> int:
        """Total bytes across both directions."""
        return self.bytes_client_to_server + self.bytes_server_to_client

    def merge(self, other: "ExecutionTrace") -> None:
        """Fold another trace's costs into this one."""
        self.ops.update(other.ops)
        self.bytes_client_to_server += other.bytes_client_to_server
        self.bytes_server_to_client += other.bytes_server_to_client
        self.messages += other.messages
        self.rounds += other.rounds
        self.wall_seconds += other.wall_seconds

    def timed(self) -> "_TraceTimer":
        """Context manager adding elapsed wall time to this trace::

            with trace.timed():
                run_protocol(...)
        """
        return _TraceTimer(self)

    def op_count(self, op: Op) -> int:
        """Number of recorded occurrences of ``op``."""
        return self.ops.get(op, 0)

    def summary(self) -> Dict[str, float]:
        """A flat dict view used by benchmark reporting."""
        result: Dict[str, float] = {
            "bytes_total": float(self.total_bytes),
            "bytes_client_to_server": float(self.bytes_client_to_server),
            "bytes_server_to_client": float(self.bytes_server_to_client),
            "messages": float(self.messages),
            "rounds": float(self.rounds),
            "wall_seconds": self.wall_seconds,
        }
        for op, count in sorted(self.ops.items(), key=lambda kv: kv[0].value):
            result[f"op_{op.value}"] = float(count)
        return result

    def __iter__(self) -> Iterator:
        return iter(self.summary().items())


class _TraceTimer:
    """Context manager recording wall time into a trace."""

    def __init__(self, trace: ExecutionTrace) -> None:
        self._trace = trace
        self._start: Optional[float] = None

    def __enter__(self) -> "_TraceTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self._trace.wall_seconds += time.perf_counter() - self._start
