"""Canonical wire codec for every payload that crosses the two-party link.

Every protocol message in this library is one of a small set of shapes:
signed integers (blinded differences, shares, labels), byte strings (OT
table entries), strings, floats, booleans, ``None`` signals, Paillier /
DGK / GM ciphertexts, and nested lists/tuples/dicts of those. This
module defines *the* encoding of each shape -- a one-byte type tag
followed by a length-prefixed body -- and both transport backends and
the :class:`~repro.smc.network.Channel` byte accounting derive from it,
so the simulator's accounting and the bytes observed on a real TCP
socket agree exactly, by construction.

Layout summary (all length prefixes are unsigned 32-bit big-endian):

====================  ========================================================
shape                 encoding
====================  ========================================================
``None``              ``0x00``
``False`` / ``True``  ``0x01`` / ``0x02``
``int``               ``0x03`` + u32 length + two's-complement big-endian
``float``             ``0x04`` + IEEE-754 big-endian double (8 bytes)
``bytes``             ``0x05`` + u32 length + raw bytes
``str``               ``0x06`` + u32 length + UTF-8 bytes
``list``              ``0x07`` + u32 count + encoded items
``tuple``             ``0x08`` + u32 count + encoded items
``dict``              ``0x09`` + u32 count + encoded key/value pairs
Paillier ciphertext   ``0x0A`` + u32 length + fixed-width big-endian value
DGK ciphertext        ``0x0B`` + u32 length + fixed-width big-endian value
GM ciphertext         ``0x0C`` + u32 length + fixed-width big-endian value
additive share        ``0x0D`` + u32 length + modulus + fixed-width value
Beaver triple         ``0x0E`` + u32 count (3) + the ``a``/``b``/``c`` shares
====================  ========================================================

Integers use a *signed* two's-complement body of ``bit_length() // 8 + 1``
bytes, so negative values (blinded differences, signed shares) are both
encodable and distinguishable from their absolute values -- the sizing
ambiguity the old magnitude-only accounting had. Numpy scalars
(``np.int64``, ``np.bool_``, ``np.float64``, ...) are canonicalised to
their Python equivalents before encoding.

Ciphertext bodies are fixed-width (the size of the key's ciphertext
group), so message sizes leak nothing about plaintext magnitudes.
Additive shares (the share backend's openings and input sharings) get
the same treatment: the value body is zero-padded to the byte width of
the ring modulus, so a share's wire size depends only on the ring --
never on the share's magnitude.
Decoding a ciphertext requires the matching public key; a
:class:`WireCodec` carries the session's public keys and is the decoding
entry point. Encoding is keyless.

Frames: a transport message is ``kind (1 byte) + u32 body length + body``
(:data:`FRAME_OVERHEAD` = 5 bytes). The channel charges exactly one
frame per logical message.
"""

from __future__ import annotations

import hashlib
import numbers
import struct
import socket
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.beaver import BeaverTriple
from repro.crypto.dgk import DgkCiphertext, DgkPublicKey
from repro.crypto.gm import GMCiphertext, GMPublicKey
from repro.crypto.paillier import PaillierCiphertext, PaillierPublicKey
from repro.crypto.secret_sharing import AdditiveShare

try:  # numpy is a hard dependency of the repo, but keep the codec honest
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

WIRE_VERSION = 1

# -- type tags ---------------------------------------------------------------

TAG_NONE = 0x00
TAG_FALSE = 0x01
TAG_TRUE = 0x02
TAG_INT = 0x03
TAG_FLOAT = 0x04
TAG_BYTES = 0x05
TAG_STR = 0x06
TAG_LIST = 0x07
TAG_TUPLE = 0x08
TAG_DICT = 0x09
TAG_PAILLIER = 0x0A
TAG_DGK = 0x0B
TAG_GM = 0x0C
TAG_SHARE = 0x0D
TAG_TRIPLE = 0x0E

#: tag byte + u32 length prefix, paid by every length-prefixed element.
ELEMENT_OVERHEAD = 5

# -- frame kinds -------------------------------------------------------------

#: ``kind`` byte + u32 body length, paid once per transport frame.
FRAME_OVERHEAD = 5

KIND_MSG = 0x01        # a protocol message (mirror/forward me)
KIND_KEYS = 0x02       # session keyring (public keys for the codec)
KIND_REQUEST = 0x03    # classification request (row, disclosure, seed)
KIND_RESULT = 0x04     # classification result (label + trace summary)
KIND_STATS = 0x05      # byte-accounting stats request / reply
KIND_CLOSE = 0x06      # end of session (connection may be reused)
KIND_SHUTDOWN = 0x07   # stop serving entirely (body carries the token)
KIND_ERROR = 0x08      # server-side failure report (code, message, id)
KIND_HEALTH = 0x09     # liveness probe / status reply (fleet heartbeats)

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


def tag_registry() -> dict:
    """All ``TAG_*`` type-tag constants of this codec, by name.

    The authoritative enumeration of wire shapes: the round-trip
    property tests iterate it so a newly added tag is automatically
    covered (the test fails until a sample payload for it exists), and
    the ``wire-tags`` lint rule enforces that each entry has both an
    encode and a decode branch.
    """
    return {
        name: value
        for name, value in globals().items()
        if name.startswith("TAG_") and isinstance(value, int)
    }


def kind_registry() -> dict:
    """All ``KIND_*`` frame-kind constants, by name."""
    return {
        name: value
        for name, value in globals().items()
        if name.startswith("KIND_") and isinstance(value, int)
    }


def payload_tag_name(payload: Any) -> str:
    """Lower-case wire-tag name of ``payload``'s top level.

    Used by telemetry's per-tag wire-byte counters
    (``wire.bytes.tag.<name>``); payloads with no codec tag (accounted
    but unshippable objects) report as ``"opaque"``.
    """
    payload = _canonical(payload)
    if payload is None:
        return "none"
    if isinstance(payload, bool):
        return "true" if payload else "false"
    if isinstance(payload, numbers.Integral):
        return "int"
    if isinstance(payload, float):
        return "float"
    if isinstance(payload, bytes):
        return "bytes"
    if isinstance(payload, str):
        return "str"
    if isinstance(payload, PaillierCiphertext):
        return "paillier"
    if isinstance(payload, DgkCiphertext):
        return "dgk"
    if isinstance(payload, GMCiphertext):
        return "gm"
    if isinstance(payload, AdditiveShare):
        return "share"
    if isinstance(payload, BeaverTriple):
        return "triple"
    if isinstance(payload, list):
        return "list"
    if isinstance(payload, tuple):
        return "tuple"
    if isinstance(payload, dict):
        return "dict"
    return "opaque"


class WireError(Exception):
    """Raised on unencodable payloads or malformed wire data."""


def _canonical(payload: Any) -> Any:
    """Coerce numpy scalars to their Python equivalents.

    The codebase hands ``np.int64`` / ``np.bool_`` / ``np.float64``
    values around freely; the wire format only knows the canonical
    Python shapes.
    """
    if _np is not None and isinstance(payload, _np.generic):
        return payload.item()
    return payload


def _int_body_length(value: int) -> int:
    """Bytes in the canonical two's-complement body of ``value``.

    One byte more than the magnitude needs, so the sign bit always has
    room: ``255`` encodes as ``00 FF`` and ``-255`` as ``FF 01`` -- two
    different bodies of the same deterministic length.
    """
    return value.bit_length() // 8 + 1


def _share_value_width(modulus: int) -> int:
    """Fixed byte width of a share value in ``Z_modulus``.

    Every element of the ring fits (values are reduced, so strictly
    below the modulus), and the width depends only on the ring -- share
    sizes leak nothing about share magnitudes.
    """
    return (modulus.bit_length() + 7) // 8


def _share_body(share: AdditiveShare) -> bytes:
    """The length-prefixed body of one additive share element."""
    if not 0 <= share.value < share.modulus:
        raise WireError(
            f"share value {share.value} outside ring Z_{share.modulus}"
        )
    width = _share_value_width(share.modulus)
    return (
        _U32.pack(width)
        + share.modulus.to_bytes(width, "big")
        + share.value.to_bytes(width, "big")
    )


def encoded_size(payload: Any) -> int:
    """Exact length in bytes of :func:`encode` without materialising it.

    The in-process channel uses this for byte accounting, so simulated
    traffic equals real traffic byte-for-byte.
    """
    payload = _canonical(payload)
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, numbers.Integral):
        return ELEMENT_OVERHEAD + _int_body_length(int(payload))
    if isinstance(payload, float):
        return 1 + 8
    if isinstance(payload, bytes):
        return ELEMENT_OVERHEAD + len(payload)
    if isinstance(payload, str):
        return ELEMENT_OVERHEAD + len(payload.encode("utf-8"))
    if isinstance(payload, PaillierCiphertext):
        return ELEMENT_OVERHEAD + payload.serialized_size_bytes()
    if isinstance(payload, (DgkCiphertext, GMCiphertext)):
        return ELEMENT_OVERHEAD + payload.serialized_size_bytes()
    if isinstance(payload, AdditiveShare):
        # TAG_SHARE body: u32 width + modulus + fixed-width value.
        return ELEMENT_OVERHEAD + 4 + 2 * _share_value_width(payload.modulus)
    if isinstance(payload, BeaverTriple):
        # TAG_TRIPLE: u32 count (3) + the a/b/c share elements.
        return ELEMENT_OVERHEAD + sum(
            encoded_size(share)
            for share in (payload.a, payload.b, payload.c)
        )
    if isinstance(payload, (list, tuple)):
        return ELEMENT_OVERHEAD + sum(encoded_size(item) for item in payload)
    if isinstance(payload, dict):
        return ELEMENT_OVERHEAD + sum(
            encoded_size(k) + encoded_size(v) for k, v in payload.items()
        )
    raise WireError(f"cannot encode payload of type {type(payload).__name__}")


def encode(payload: Any) -> bytes:
    """Serialise ``payload`` to its canonical wire bytes."""
    out = bytearray()
    _encode_into(payload, out)
    return bytes(out)


def _encode_into(payload: Any, out: bytearray) -> None:
    payload = _canonical(payload)
    if payload is None:
        out.append(TAG_NONE)
        return
    if isinstance(payload, bool):
        out.append(TAG_TRUE if payload else TAG_FALSE)
        return
    if isinstance(payload, numbers.Integral):
        value = int(payload)
        body = value.to_bytes(_int_body_length(value), "big", signed=True)
        out.append(TAG_INT)
        out += _U32.pack(len(body))
        out += body
        return
    if isinstance(payload, float):
        out.append(TAG_FLOAT)
        out += _F64.pack(payload)
        return
    if isinstance(payload, bytes):
        out.append(TAG_BYTES)
        out += _U32.pack(len(payload))
        out += payload
        return
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        out.append(TAG_STR)
        out += _U32.pack(len(body))
        out += body
        return
    if isinstance(payload, PaillierCiphertext):
        body = payload.to_bytes()
        out.append(TAG_PAILLIER)
        out += _U32.pack(len(body))
        out += body
        return
    if isinstance(payload, DgkCiphertext):
        body = payload.to_bytes()
        out.append(TAG_DGK)
        out += _U32.pack(len(body))
        out += body
        return
    if isinstance(payload, GMCiphertext):
        body = payload.to_bytes()
        out.append(TAG_GM)
        out += _U32.pack(len(body))
        out += body
        return
    if isinstance(payload, AdditiveShare):
        body = _share_body(payload)
        out.append(TAG_SHARE)
        out += _U32.pack(len(body))
        out += body
        return
    if isinstance(payload, BeaverTriple):
        out.append(TAG_TRIPLE)
        out += _U32.pack(3)
        for share in (payload.a, payload.b, payload.c):
            _encode_into(share, out)
        return
    if isinstance(payload, (list, tuple)):
        out.append(TAG_LIST if isinstance(payload, list) else TAG_TUPLE)
        out += _U32.pack(len(payload))
        for item in payload:
            _encode_into(item, out)
        return
    if isinstance(payload, dict):
        out.append(TAG_DICT)
        out += _U32.pack(len(payload))
        for key, value in payload.items():
            _encode_into(key, out)
            _encode_into(value, out)
        return
    raise WireError(f"cannot encode payload of type {type(payload).__name__}")


@dataclass(frozen=True)
class WireCodec:
    """Decoder bound to a session's public keys.

    Encoding never needs keys (ciphertexts carry theirs); decoding a
    ciphertext tag does, so both endpoints construct a codec from the
    session keyring exchanged at handshake.
    """

    paillier: Optional[PaillierPublicKey] = None
    dgk: Optional[DgkPublicKey] = None
    gm: Optional[GMPublicKey] = None

    # Encoding is stateless; expose it here for symmetry.
    encode = staticmethod(encode)
    encoded_size = staticmethod(encoded_size)

    def decode(self, data: bytes) -> Any:
        """Decode one payload; rejects trailing garbage."""
        value, offset = self._decode(memoryview(data), 0)
        if offset != len(data):
            raise WireError(
                f"{len(data) - offset} trailing bytes after decoded payload"
            )
        return value

    def _decode(self, view: memoryview, offset: int) -> Tuple[Any, int]:
        if offset >= len(view):
            raise WireError("truncated payload: missing type tag")
        tag = view[offset]
        offset += 1
        if tag == TAG_NONE:
            return None, offset
        if tag == TAG_FALSE:
            return False, offset
        if tag == TAG_TRUE:
            return True, offset
        if tag == TAG_FLOAT:
            body = self._take(view, offset, 8)
            return _F64.unpack(body)[0], offset + 8
        if tag in (TAG_INT, TAG_BYTES, TAG_STR, TAG_PAILLIER, TAG_DGK,
                   TAG_GM, TAG_SHARE):
            length = _U32.unpack(self._take(view, offset, 4))[0]
            offset += 4
            body = bytes(self._take(view, offset, length))
            offset += length
            if tag == TAG_INT:
                return int.from_bytes(body, "big", signed=True), offset
            if tag == TAG_BYTES:
                return body, offset
            if tag == TAG_STR:
                return body.decode("utf-8"), offset
            if tag == TAG_PAILLIER:
                if self.paillier is None:
                    raise WireError("no Paillier key to decode ciphertext")
                return PaillierCiphertext.from_bytes(body, self.paillier), offset
            if tag == TAG_DGK:
                if self.dgk is None:
                    raise WireError("no DGK key to decode ciphertext")
                return DgkCiphertext.from_bytes(body, self.dgk), offset
            if tag == TAG_SHARE:
                return self._decode_share(body), offset
            if self.gm is None:
                raise WireError("no GM key to decode ciphertext")
            return GMCiphertext.from_bytes(body, self.gm), offset
        if tag == TAG_TRIPLE:
            count = _U32.unpack(self._take(view, offset, 4))[0]
            offset += 4
            if count != 3:
                raise WireError(
                    f"Beaver triple must carry 3 shares, got {count}"
                )
            shares = []
            for _ in range(3):
                item, offset = self._decode(view, offset)
                if not isinstance(item, AdditiveShare):
                    raise WireError(
                        f"Beaver triple element decoded as "
                        f"{type(item).__name__}, expected an additive share"
                    )
                shares.append(item)
            return BeaverTriple(a=shares[0], b=shares[1], c=shares[2]), offset
        if tag in (TAG_LIST, TAG_TUPLE):
            count = _U32.unpack(self._take(view, offset, 4))[0]
            offset += 4
            items = []
            for _ in range(count):
                item, offset = self._decode(view, offset)
                items.append(item)
            return (items if tag == TAG_LIST else tuple(items)), offset
        if tag == TAG_DICT:
            count = _U32.unpack(self._take(view, offset, 4))[0]
            offset += 4
            result = {}
            for _ in range(count):
                key, offset = self._decode(view, offset)
                value, offset = self._decode(view, offset)
                result[key] = value
            return result, offset
        raise WireError(f"unknown type tag 0x{tag:02X}")

    @staticmethod
    def _decode_share(body: bytes) -> AdditiveShare:
        """Decode a ``TAG_SHARE`` body (keyless: shares carry their ring)."""
        if len(body) < 4:
            raise WireError("truncated share body: missing width")
        width = _U32.unpack(body[:4])[0]
        if len(body) != 4 + 2 * width:
            raise WireError(
                f"share body carries {len(body)} bytes, expected "
                f"{4 + 2 * width} for width {width}"
            )
        modulus = int.from_bytes(body[4:4 + width], "big")
        value = int.from_bytes(body[4 + width:], "big")
        if modulus < 2:
            raise WireError(f"share modulus {modulus} is not a ring")
        if value >= modulus:
            raise WireError(
                f"share value {value} outside ring Z_{modulus}"
            )
        return AdditiveShare(value=value, modulus=modulus)

    @staticmethod
    def _take(view: memoryview, offset: int, length: int) -> memoryview:
        if offset + length > len(view):
            raise WireError("truncated payload body")
        return view[offset:offset + length]


# -- session keyring ---------------------------------------------------------


def keyring_payload(
    paillier: Optional[PaillierPublicKey] = None,
    dgk: Optional[DgkPublicKey] = None,
    gm: Optional[GMPublicKey] = None,
) -> dict:
    """The handshake message describing a session's public keys."""
    payload: dict = {"wire_version": WIRE_VERSION}
    if paillier is not None:
        payload["paillier_n"] = paillier.n
    if dgk is not None:
        payload["dgk"] = {"n": dgk.n, "g": dgk.g, "h": dgk.h, "u": dgk.u}
    if gm is not None:
        payload["gm"] = {"n": gm.n, "x": gm.pseudo_residue}
    return payload


def codec_from_keyring(payload: dict) -> WireCodec:
    """Rebuild a :class:`WireCodec` from a keyring handshake message."""
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version!r}")
    paillier = None
    if "paillier_n" in payload:
        paillier = PaillierPublicKey(n=int(payload["paillier_n"]))
    dgk = None
    if "dgk" in payload:
        spec = payload["dgk"]
        dgk = DgkPublicKey(n=int(spec["n"]), g=int(spec["g"]),
                           h=int(spec["h"]), u=int(spec["u"]))
    gm = None
    if "gm" in payload:
        spec = payload["gm"]
        gm = GMPublicKey(n=int(spec["n"]), pseudo_residue=int(spec["x"]))
    return WireCodec(paillier=paillier, dgk=dgk, gm=gm)


def keyring_fingerprint(payload: dict) -> str:
    """Stable client identity derived from a keyring handshake message.

    SHA-256 over the keyring's canonical wire encoding, truncated to 16
    hex characters. Because every session's keys are derived
    deterministically from the client's seed, the fingerprint is stable
    across requests from the same client and collision-free across
    distinct keyrings -- which is what lets the serving runtime's
    privacy-budget ledger (:mod:`repro.privacy.ledger`) attribute
    cumulative disclosure to a client identity without any extra
    handshake field. See ``docs/PROTOCOLS.md`` (client identity) and
    ``docs/PRIVACY.md`` (what the identity is used for).
    """
    def _sorted(value: Any) -> Any:
        # The codec preserves dict insertion order; identity must not
        # depend on it, so sort keys recursively before encoding.
        if isinstance(value, dict):
            return {k: _sorted(value[k]) for k in sorted(value)}
        return value

    digest = hashlib.sha256(encode(_sorted(payload))).hexdigest()
    return f"pk-{digest[:16]}"


def error_payload(code: str, message: str, request_id: str = "") -> dict:
    """The body of a ``KIND_ERROR`` frame.

    ``code`` is a short machine-readable reason (``"overloaded"``,
    ``"bad-request"``, ``"deadline"``, ``"internal"``), ``message`` a
    sanitized human-readable sentence (never a raw traceback or secret
    material), ``request_id`` the server-assigned id of the failed
    request. Both the concurrent serving runtime
    (:mod:`repro.serving`) and the client
    (:func:`repro.smc.transport.request_classification`) use this shape.
    """
    return {
        "code": str(code),
        "message": str(message),
        "request_id": str(request_id),
    }


def shutdown_payload(token: str) -> dict:
    """The body of an authorized ``KIND_SHUTDOWN`` frame.

    ``token`` is the per-server shutdown token generated at bind time
    (:attr:`repro.serving.ClassificationServer.shutdown_token`). A
    ``KIND_SHUTDOWN`` frame whose body does not carry the right token
    is answered with a ``bad-request`` error and ignored, so a stray
    TCP client cannot stop a server it does not operate.
    """
    return {"token": str(token)}


def health_payload(
    status: str,
    shard: str = "",
    telemetry: Optional[dict] = None,
) -> dict:
    """The body of a ``KIND_HEALTH`` status reply.

    ``status`` is ``"ok"`` or ``"draining"``; ``shard`` the responding
    shard's name (empty for a standalone server); ``telemetry`` an
    optional picklable metrics snapshot
    (:meth:`repro.telemetry.MetricsRegistry.snapshot`) included when
    the probe body asked for one (``{"telemetry": True}``). The fleet
    frontend merges these snapshots into its own registry.
    """
    payload: dict = {"status": str(status), "shard": str(shard)}
    if telemetry is not None:
        payload["telemetry"] = telemetry
    return payload


def codec_for_context(ctx) -> WireCodec:
    """A codec carrying a :class:`~repro.smc.context.TwoPartyContext`'s
    public keys."""
    return WireCodec(
        paillier=ctx.paillier.public_key, dgk=ctx.dgk.public_key
    )


# -- framing -----------------------------------------------------------------


def pack_frame(kind: int, body: bytes) -> bytes:
    """One transport frame: kind byte + u32 body length + body."""
    return bytes((kind,)) + _U32.pack(len(body)) + body


def frame_size(payload: Any) -> int:
    """Total frame bytes for ``payload``: what the channel charges and
    what one leg of the socket actually carries."""
    return FRAME_OVERHEAD + encoded_size(payload)


def send_frame(sock: socket.socket, kind: int, body: bytes) -> int:
    """Write one frame; returns the number of bytes put on the wire."""
    frame = pack_frame(kind, body)
    sock.sendall(frame)
    return len(frame)


def recv_exact(sock: socket.socket, length: int) -> bytes:
    """Read exactly ``length`` bytes or raise :class:`WireError` on EOF."""
    chunks = bytearray()
    while len(chunks) < length:
        chunk = sock.recv(length - len(chunks))
        if not chunk:
            raise WireError(
                f"connection closed after {len(chunks)}/{length} bytes"
            )
        chunks += chunk
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame; returns ``(kind, body)``."""
    header = recv_exact(sock, FRAME_OVERHEAD)
    kind = header[0]
    length = _U32.unpack(header[1:5])[0]
    body = recv_exact(sock, length) if length else b""
    return kind, body
