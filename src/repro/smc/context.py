"""Shared state for a two-party secure computation session.

A :class:`TwoPartyContext` bundles everything a protocol invocation
needs: the accounted channel, the client's key material (the *client* is
the data owner and holds all private keys, exactly as in Bost et al.),
independent randomness streams for each party, and the statistical
security parameter used for additive blinding.

Protocols take a context instead of loose arguments so that composed
executions (dot product, then comparison, then argmax) accumulate into a
single :class:`~repro.smc.protocol.ExecutionTrace`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import repro.telemetry as telemetry
from repro.core.session import SessionConfig
from repro.crypto.dgk import DgkKeyPair
from repro.crypto.engine import CryptoEngine, make_engine
from repro.crypto.paillier import PaillierCiphertext, PaillierKeyPair
from repro.crypto.rand import DeterministicRandom, fresh_rng, secure_rng
from repro.smc.network import Channel
from repro.smc.protocol import ExecutionTrace, Op

DEFAULT_STATISTICAL_SECURITY_BITS = 40


@dataclass
class TwoPartyContext:
    """Keys, randomness and accounting for one client/server session.

    Attributes
    ----------
    channel:
        The accounted message channel; its trace is the session trace.
    paillier:
        The client's Paillier key pair. The server only ever uses
        ``paillier.public_key``.
    dgk:
        The client's DGK key pair for the bitwise comparison subprotocol.
    client_rng / server_rng:
        Independent randomness streams so one party's draws cannot
        perturb the other's (important for reproducible transcripts).
    statistical_security_bits:
        Width of additive blinding noise (``kappa``); blinded values are
        statistically indistinguishable from uniform up to ``2^-kappa``.
    engine:
        The batch crypto engine executing bulk Paillier work. The
        default serial engine reproduces the reference behaviour; a
        parallel engine (``make_engine("parallel", workers)``) fans the
        big-int exponentiations out across processes while producing
        byte-identical ciphertexts and identical traces.

    Example::

        ctx = make_context(config=SessionConfig(seed=7))
        label = deployed.classify(ctx, row)
        print(ctx.trace.total_bytes, ctx.trace.rounds)
    """

    channel: Channel
    paillier: PaillierKeyPair
    dgk: DgkKeyPair
    client_rng: DeterministicRandom
    server_rng: DeterministicRandom
    statistical_security_bits: int = DEFAULT_STATISTICAL_SECURITY_BITS
    engine: CryptoEngine = field(default_factory=CryptoEngine)
    #: The protocol backend live queries run on (a
    #: :class:`repro.secure.backends.ProtocolBackend`). ``None`` on
    #: directly constructed legacy contexts;
    #: :func:`repro.secure.base.resolve_backend` then falls back to the
    #: Paillier backend with a one-time deprecation warning.
    protocol_backend: Optional[object] = None

    @property
    def trace(self) -> ExecutionTrace:
        """The session's execution trace (owned by the channel)."""
        return self.channel.trace

    # -- counted cryptographic helpers ---------------------------------

    def client_encrypt(self, value: int) -> PaillierCiphertext:
        """Client-side Paillier encryption, counted in the trace."""
        self.trace.count(Op.PAILLIER_ENCRYPT)
        return self.paillier.public_key.encrypt(value, rng=self.client_rng)

    def server_encrypt(self, value: int) -> PaillierCiphertext:
        """Server-side Paillier encryption under the client's key."""
        self.trace.count(Op.PAILLIER_ENCRYPT)
        return self.paillier.public_key.encrypt(value, rng=self.server_rng)

    def client_decrypt(self, ciphertext: PaillierCiphertext) -> int:
        """Client-side Paillier decryption, counted in the trace."""
        self.trace.count(Op.PAILLIER_DECRYPT)
        return self.paillier.private_key.decrypt(ciphertext)

    def add(self, a: PaillierCiphertext, b) -> PaillierCiphertext:
        """Homomorphic addition (ciphertext or plaintext), counted."""
        self.trace.count(Op.PAILLIER_ADD)
        return a + b

    def scalar_mul(self, a: PaillierCiphertext, scalar: int) -> PaillierCiphertext:
        """Homomorphic scalar multiplication, counted."""
        self.trace.count(Op.PAILLIER_SCALAR_MUL)
        return a * scalar

    def rerandomize(self, a: PaillierCiphertext, rng=None) -> PaillierCiphertext:
        """Ciphertext re-randomisation, counted."""
        self.trace.count(Op.PAILLIER_RERANDOMIZE)
        return a.rerandomize(rng=rng or self.server_rng)

    def blinding_noise(self, payload_bits: int, rng=None) -> int:
        """Draw additive blinding noise covering ``payload_bits`` plus
        the statistical security margin."""
        rng = rng or self.server_rng
        return rng.getrandbits(payload_bits + self.statistical_security_bits)

    # -- counted batch paths (dispatched to the engine) -----------------

    def client_encrypt_batch(
        self, values: Sequence[int]
    ) -> List[PaillierCiphertext]:
        """Client-side batch encryption; one counted op per value.

        Nonces come from ``client_rng`` in input order, so the batch is
        transcript-identical to a loop of :meth:`client_encrypt`.
        """
        self.trace.count(Op.PAILLIER_ENCRYPT, len(values))
        return self.engine.encrypt_batch(
            self.paillier.public_key, values, rng=self.client_rng
        )

    def server_encrypt_batch(
        self, values: Sequence[int]
    ) -> List[PaillierCiphertext]:
        """Server-side batch encryption under the client's key."""
        self.trace.count(Op.PAILLIER_ENCRYPT, len(values))
        return self.engine.encrypt_batch(
            self.paillier.public_key, values, rng=self.server_rng
        )

    def client_decrypt_batch(
        self, ciphertexts: Sequence[PaillierCiphertext], signed: bool = True
    ) -> List[int]:
        """Client-side batch decryption (CRT fast path when available)."""
        self.trace.count(Op.PAILLIER_DECRYPT, len(ciphertexts))
        return self.engine.decrypt_batch(
            self.paillier.private_key, ciphertexts, signed=signed
        )

    def scalar_mul_batch(
        self,
        ciphertexts: Sequence[PaillierCiphertext],
        scalars: Sequence[int],
        signed: bool = True,
    ) -> List[PaillierCiphertext]:
        """Batch homomorphic scalar multiplication, counted per element."""
        self.trace.count(Op.PAILLIER_SCALAR_MUL, len(ciphertexts))
        return self.engine.scalar_mul_batch(ciphertexts, scalars, signed=signed)

    def rerandomize_batch(
        self, ciphertexts: Sequence[PaillierCiphertext], rng=None
    ) -> List[PaillierCiphertext]:
        """Batch re-randomisation, counted per element."""
        self.trace.count(Op.PAILLIER_RERANDOMIZE, len(ciphertexts))
        return self.engine.rerandomize_batch(
            ciphertexts, rng=rng or self.server_rng
        )


#: One-time flag for the legacy-kwargs deprecation warning, so a script
#: that calls :func:`make_context` in a loop is not drowned in noise.
_legacy_kwargs_warned = False

def make_context(
    seed: Optional[int] = None,
    paillier_bits: Optional[int] = None,
    dgk_bits: Optional[int] = None,
    dgk_plaintext_bits: Optional[int] = None,
    statistical_security_bits: Optional[int] = None,
    channel: Optional[Channel] = None,
    engine: Optional[CryptoEngine] = None,
    engine_backend: Optional[str] = None,
    engine_workers: Optional[int] = None,
    config: Optional[SessionConfig] = None,
    protocol_backend=None,
) -> TwoPartyContext:
    """Build a ready-to-use session context with freshly generated keys.

    The preferred interface is ``make_context(config=SessionConfig(...))``
    (optionally with ``seed=``, ``channel=``, a prebuilt ``engine=`` or
    a prebuilt ``protocol_backend=`` -- passing the backend lets many
    per-request contexts share one offline triple store -- which stay
    first-class). The scattered per-parameter keywords
    (``paillier_bits``, ``engine_backend``, ...) are deprecated in
    favour of :class:`repro.core.session.SessionConfig`; they keep
    working -- overriding the config when both are given -- but emit one
    :class:`DeprecationWarning` per process.

    Under ``rng_mode="deterministic"`` the single seed derives the key
    material and both parties' randomness streams, so a whole protocol
    transcript is reproducible from one integer; ``rng_mode="system"``
    draws everything from OS entropy instead. The engine backend only
    changes *how* batch work executes, never the transcript:
    ``engine_backend="parallel"`` produces the same ciphertexts and
    trace as the serial default.

    When ``config.telemetry`` is set, telemetry recording is switched on
    for the process before key generation, so the session is observable
    from its first operation.

    Example::

        ctx = make_context(config=SessionConfig(
            seed=7, paillier_bits=384, dgk_bits=192,
        ))
    """
    global _legacy_kwargs_warned
    cfg = config if config is not None else SessionConfig()
    passed = {
        "paillier_bits": paillier_bits,
        "dgk_bits": dgk_bits,
        "dgk_plaintext_bits": dgk_plaintext_bits,
        "statistical_security_bits": statistical_security_bits,
        "engine_backend": engine_backend,
        "engine_workers": engine_workers,
    }
    legacy = {name: value for name, value in passed.items() if value is not None}
    if legacy:
        if not _legacy_kwargs_warned:
            warnings.warn(
                "passing "
                + ", ".join(sorted(legacy))
                + " to make_context() directly is deprecated; build a "
                "repro.core.session.SessionConfig and pass it as "
                "make_context(config=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            _legacy_kwargs_warned = True
        cfg = cfg.with_overrides(**legacy)
    if seed is not None:
        cfg = cfg.with_overrides(seed=seed)
    if cfg.telemetry and not telemetry.enabled():
        telemetry.configure(True)
    if cfg.rng_mode == "system":
        master = secure_rng()
    else:
        master = fresh_rng(cfg.seed)
    with telemetry.span(
        "session.keygen",
        paillier_bits=cfg.paillier_bits,
        dgk_bits=cfg.dgk_bits,
    ):
        paillier = PaillierKeyPair.generate(
            key_bits=cfg.paillier_bits, rng=master
        )
        dgk = DgkKeyPair.generate(
            key_bits=cfg.dgk_bits,
            plaintext_bits=cfg.dgk_plaintext_bits,
            rng=master,
        )
    # Imported here: repro.secure imports this module at import time.
    from repro.secure.backends import make_protocol_backend

    return TwoPartyContext(
        channel=channel or Channel(),
        paillier=paillier,
        dgk=dgk,
        client_rng=master.fork(),
        server_rng=master.fork(),
        statistical_security_bits=cfg.statistical_security_bits,
        engine=engine
        or make_engine(cfg.engine_backend, workers=cfg.engine_workers,
                       modexp=cfg.crypto_backend),
        protocol_backend=(
            protocol_backend
            if protocol_backend is not None
            else make_protocol_backend(cfg.protocol_backend)
        ),
    )
