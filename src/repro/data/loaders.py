"""CSV import/export for datasets.

Downstream users bring their own cohorts; this module round-trips a
:class:`~repro.data.schema.Dataset` through a pair of files:

* ``<path>`` -- a plain CSV: one header row (feature names + the label
  name), integer-coded cells;
* ``<path>.schema.json`` -- the metadata CSV cannot carry: per-feature
  domain sizes and the sensitive/public flags.

Import validates codes against the declared domains (via the
:class:`Dataset` constructor), so a malformed file fails loudly at load
time rather than corrupting a privacy analysis later.
"""

from __future__ import annotations

import csv
import json
import os
from typing import List, Optional

import numpy as np

from repro.data.schema import Dataset, FeatureSpec, SchemaError


class LoaderError(Exception):
    """Raised on malformed dataset files."""


def _schema_path(csv_path: str) -> str:
    return csv_path + ".schema.json"


def save_dataset_csv(dataset: Dataset, csv_path: str) -> None:
    """Write ``dataset`` as CSV plus a JSON schema sidecar."""
    with open(csv_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(dataset.feature_names + [dataset.label_name])
        for row, label in zip(dataset.X, dataset.y):
            writer.writerow([int(v) for v in row] + [int(label)])

    schema = {
        "name": dataset.name,
        "label_name": dataset.label_name,
        "features": [
            {
                "name": spec.name,
                "domain_size": spec.domain_size,
                "sensitive": spec.sensitive,
                "public": spec.public,
                "description": spec.description,
            }
            for spec in dataset.features
        ],
    }
    with open(_schema_path(csv_path), "w", encoding="utf-8") as handle:
        json.dump(schema, handle, indent=1)


def load_dataset_csv(csv_path: str, name: Optional[str] = None) -> Dataset:
    """Read a dataset written by :func:`save_dataset_csv`.

    Parameters
    ----------
    csv_path:
        Path of the CSV; the schema sidecar must sit next to it.
    name:
        Optional override of the stored dataset name.
    """
    schema_file = _schema_path(csv_path)
    if not os.path.exists(schema_file):
        raise LoaderError(
            f"missing schema sidecar {schema_file!r}; datasets need their "
            f"domain/sensitivity metadata"
        )
    with open(schema_file, encoding="utf-8") as handle:
        schema = json.load(handle)
    features = [
        FeatureSpec(
            name=f["name"],
            domain_size=int(f["domain_size"]),
            sensitive=bool(f.get("sensitive", False)),
            public=bool(f.get("public", False)),
            description=f.get("description", ""),
        )
        for f in schema["features"]
    ]
    label_name = schema["label_name"]

    with open(csv_path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise LoaderError(f"{csv_path!r} is empty") from None
        expected_header = [f.name for f in features] + [label_name]
        if header != expected_header:
            raise LoaderError(
                f"CSV header {header} does not match the schema's columns "
                f"{expected_header}"
            )
        rows: List[List[int]] = []
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(expected_header):
                raise LoaderError(
                    f"line {line_number}: expected {len(expected_header)} "
                    f"cells, got {len(row)}"
                )
            try:
                rows.append([int(cell) for cell in row])
            except ValueError as error:
                raise LoaderError(
                    f"line {line_number}: non-integer cell ({error})"
                ) from None
    if not rows:
        raise LoaderError(f"{csv_path!r} has a header but no data rows")

    matrix = np.asarray(rows, dtype=np.int64)
    try:
        return Dataset(
            name=name or schema.get("name", os.path.basename(csv_path)),
            features=features,
            X=matrix[:, :-1],
            y=matrix[:, -1],
            label_name=label_name,
        )
    except SchemaError as error:
        raise LoaderError(f"invalid data for declared schema: {error}") from None
