"""IWPC-warfarin-like pharmacogenomic cohort generator.

The paper's motivating scenario: a pharmacogenomic dosing model whose
output, combined with public demographics, lets an adversary infer a
patient's ``VKORC1``/``CYP2C9`` genotype (Fredrikson et al., USENIX
Security 2014). The real IWPC cohort is not redistributable, so this
generator reproduces its *correlation structure* from published facts:

* race-stratified allele frequencies of VKORC1 -1639G>A and the CYP2C9
  ``*2``/``*3`` variants (the A allele of VKORC1 is common in East-Asian
  populations, rare in African-ancestry populations),
* demographic covariates (age, height, weight, amiodarone and enzyme-
  inducer co-medication, smoking) with race/age-dependent distributions,
* the published IWPC linear dosing equation mapping all of the above to
  a weekly warfarin dose, discretised into the standard low (<21
  mg/week) / medium / high (>49 mg/week) three-class label.

Because the label really is a (noisy) linear function of genotype and
demographics, disclosing demographics genuinely leaks genotype
information through the model -- the property the privacy-risk
experiments need.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.data.schema import Dataset, FeatureSpec

# Race categories and marginal frequencies (IWPC-like cohort mix).
RACES = ("white", "asian", "black", "other")
_RACE_PROBS = (0.55, 0.30, 0.09, 0.06)

# VKORC1 -1639 A-allele frequency by race (published population genetics).
_VKORC1_A_FREQ = {"white": 0.40, "asian": 0.90, "black": 0.10, "other": 0.50}

# CYP2C9 genotype distribution by race over {*1/*1, *1/*2, *1/*3, other}.
_CYP2C9_PROBS = {
    "white": (0.65, 0.18, 0.12, 0.05),
    "asian": (0.92, 0.01, 0.06, 0.01),
    "black": (0.90, 0.04, 0.03, 0.03),
    "other": (0.80, 0.09, 0.08, 0.03),
}

# IWPC dosing equation coefficients (sqrt weekly dose scale).
_IWPC_INTERCEPT = 5.6044
_COEF_AGE_DECADE = -0.2614
_COEF_HEIGHT_CM = 0.0087
_COEF_WEIGHT_KG = 0.0128
_COEF_VKORC1_AG = -0.8677
_COEF_VKORC1_AA = -1.6974
_COEF_ASIAN = -0.6752
_COEF_BLACK = 0.4060
_COEF_OTHER = 0.0443
_COEF_ENZYME_INDUCER = 1.1816
_COEF_AMIODARONE = -0.5503
_COEF_CYP2C9 = {0: 0.0, 1: -0.5211, 2: -0.9357, 3: -1.0616}

# Label thresholds on weekly dose in mg (the standard 3-class task).
LOW_DOSE_MG = 21.0
HIGH_DOSE_MG = 49.0

# Discretisation grids for the continuous covariates.
_AGE_DECADES = 8  # codes 0..7 for 10-19 .. 80+
_HEIGHT_BINS = 4
_WEIGHT_BINS = 4
_HEIGHT_EDGES = (160.0, 170.0, 180.0)
_WEIGHT_EDGES = (65.0, 80.0, 95.0)

FEATURE_SPECS: Tuple[FeatureSpec, ...] = (
    FeatureSpec("race", 4, public=True,
                description="self-reported race (white/asian/black/other)"),
    FeatureSpec("age_decade", _AGE_DECADES, public=True,
                description="age bracket in decades (10-19 .. 80+)"),
    FeatureSpec("height_bin", _HEIGHT_BINS, public=True,
                description="height bracket (<160/160-170/170-180/>180 cm)"),
    FeatureSpec("weight_bin", _WEIGHT_BINS,
                description="weight bracket (<65/65-80/80-95/>95 kg)"),
    FeatureSpec("amiodarone", 2,
                description="amiodarone co-medication"),
    FeatureSpec("enzyme_inducer", 2,
                description="enzyme-inducer co-medication"),
    FeatureSpec("smoker", 2,
                description="current smoker"),
    FeatureSpec("diabetes", 2,
                description="diabetes comorbidity"),
    FeatureSpec("aspirin", 2,
                description="aspirin co-medication"),
    FeatureSpec("gender", 2, public=True,
                description="administrative sex"),
    FeatureSpec("vkorc1", 3, sensitive=True,
                description="VKORC1 -1639G>A genotype (GG/GA/AA)"),
    FeatureSpec("cyp2c9", 4, sensitive=True,
                description="CYP2C9 genotype (*1/*1, *1/*2, *1/*3, other)"),
)


def generate_warfarin(
    n_samples: int = 4000, seed: int = 0, dose_noise: float = 0.25
) -> Dataset:
    """Generate an IWPC-like cohort (classification view).

    Parameters
    ----------
    n_samples:
        Cohort size.
    seed:
        Generator seed; the cohort is a deterministic function of it.
    dose_noise:
        Standard deviation of Gaussian noise added on the sqrt-dose
        scale (captures unmodelled clinical variation).
    """
    dataset, _ = generate_warfarin_with_dose(n_samples, seed, dose_noise)
    return dataset


def generate_warfarin_with_dose(
    n_samples: int = 4000, seed: int = 0, dose_noise: float = 0.25
) -> Tuple[Dataset, np.ndarray]:
    """Like :func:`generate_warfarin`, additionally returning the
    continuous weekly dose (mg) per patient -- the regression target
    the paper's dosing scenario is really about."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = np.random.default_rng(seed)

    race = rng.choice(len(RACES), size=n_samples, p=_RACE_PROBS)

    # Genotypes: Hardy-Weinberg from race-specific allele frequencies.
    vkorc1 = np.zeros(n_samples, dtype=np.int64)
    cyp2c9 = np.zeros(n_samples, dtype=np.int64)
    for code, race_name in enumerate(RACES):
        mask = race == code
        count = int(mask.sum())
        if count == 0:
            continue
        a_freq = _VKORC1_A_FREQ[race_name]
        genotype_probs = (
            (1 - a_freq) ** 2,
            2 * a_freq * (1 - a_freq),
            a_freq**2,
        )
        vkorc1[mask] = rng.choice(3, size=count, p=genotype_probs)
        cyp2c9[mask] = rng.choice(4, size=count, p=_CYP2C9_PROBS[race_name])

    # Demographics with mild race/age structure.
    age_years = np.clip(rng.normal(62, 14, n_samples), 18, 89)
    height_cm = np.clip(
        rng.normal(170, 10, n_samples) - 4.0 * (race == RACES.index("asian")),
        140,
        205,
    )
    weight_kg = np.clip(
        rng.normal(80, 16, n_samples)
        - 7.0 * (race == RACES.index("asian"))
        + 0.25 * (height_cm - 170),
        40,
        160,
    )
    gender = rng.integers(0, 2, n_samples)
    height_cm += np.where(gender == 1, 6.0, -6.0)
    weight_kg += np.where(gender == 1, 5.0, -5.0)

    amiodarone = (rng.random(n_samples) < 0.12 + 0.002 * (age_years - 60)).astype(
        np.int64
    )
    enzyme_inducer = (rng.random(n_samples) < 0.05).astype(np.int64)
    smoker = (rng.random(n_samples) < np.where(age_years < 50, 0.25, 0.12)).astype(
        np.int64
    )
    diabetes = (rng.random(n_samples) < 0.10 + 0.004 * (age_years - 50)).astype(
        np.int64
    )
    aspirin = (rng.random(n_samples) < 0.30).astype(np.int64)

    # IWPC dosing equation on the sqrt(mg/week) scale.
    sqrt_dose = (
        _IWPC_INTERCEPT
        + _COEF_AGE_DECADE * (age_years // 10)
        + _COEF_HEIGHT_CM * height_cm
        + _COEF_WEIGHT_KG * weight_kg
        + _COEF_VKORC1_AG * (vkorc1 == 1)
        + _COEF_VKORC1_AA * (vkorc1 == 2)
        + _COEF_ASIAN * (race == RACES.index("asian"))
        + _COEF_BLACK * (race == RACES.index("black"))
        + _COEF_OTHER * (race == RACES.index("other"))
        + _COEF_ENZYME_INDUCER * enzyme_inducer
        + _COEF_AMIODARONE * amiodarone
        + np.vectorize(_COEF_CYP2C9.get)(cyp2c9)
        + rng.normal(0, dose_noise, n_samples)
    )
    weekly_dose_mg = np.clip(sqrt_dose, 0.5, None) ** 2
    label = np.where(
        weekly_dose_mg < LOW_DOSE_MG, 0, np.where(weekly_dose_mg > HIGH_DOSE_MG, 2, 1)
    ).astype(np.int64)

    age_decade = np.clip(age_years // 10 - 1, 0, _AGE_DECADES - 1).astype(np.int64)
    height_bin = np.searchsorted(_HEIGHT_EDGES, height_cm).astype(np.int64)
    weight_bin = np.searchsorted(_WEIGHT_EDGES, weight_kg).astype(np.int64)

    columns: Dict[str, np.ndarray] = {
        "race": race,
        "age_decade": age_decade,
        "height_bin": height_bin,
        "weight_bin": weight_bin,
        "amiodarone": amiodarone,
        "enzyme_inducer": enzyme_inducer,
        "smoker": smoker,
        "diabetes": diabetes,
        "aspirin": aspirin,
        "gender": gender,
        "vkorc1": vkorc1,
        "cyp2c9": cyp2c9,
    }
    matrix = np.column_stack([columns[spec.name] for spec in FEATURE_SPECS])
    dataset = Dataset(
        name="warfarin-like",
        features=list(FEATURE_SPECS),
        X=matrix,
        y=label,
        label_name="dose_bucket",
    )
    return dataset, weekly_dose_mg


def dose_bucket_names() -> List[str]:
    """Human-readable names of the three dose classes."""
    return [
        f"low (<{LOW_DOSE_MG:g} mg/wk)",
        f"medium ({LOW_DOSE_MG:g}-{HIGH_DOSE_MG:g} mg/wk)",
        f"high (>{HIGH_DOSE_MG:g} mg/wk)",
    ]
