"""Dataset and feature metadata containers.

Every dataset in this library is a matrix of integer-coded categorical
features plus per-feature metadata. The metadata drives the whole
pipeline: the privacy model needs domain sizes and the sensitive flag,
the disclosure optimizer needs to know which features are candidates
for disclosure, and the secure protocols need the bit widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class SchemaError(Exception):
    """Raised on inconsistent dataset construction."""


@dataclass(frozen=True)
class FeatureSpec:
    """Metadata of one categorical feature.

    Attributes
    ----------
    name:
        Human-readable identifier (unique within a dataset).
    domain_size:
        Number of category codes; values are ``0..domain_size - 1``.
    sensitive:
        Whether the attribute is an adversary's inference target (e.g.
        a SNP genotype). Disclosing a sensitive attribute is maximal
        privacy loss for it, so only a budget of ~1 ever allows it.
    public:
        Whether the attribute is considered already public knowledge
        (e.g. coarse demographics); public features can be disclosed at
        zero privacy cost and the optimizer discloses them first.
    description:
        Free-text documentation shown in dataset summaries.
    """

    name: str
    domain_size: int
    sensitive: bool = False
    public: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.domain_size < 2:
            raise SchemaError(
                f"feature {self.name!r} needs a domain of at least 2, "
                f"got {self.domain_size}"
            )
        if self.sensitive and self.public:
            raise SchemaError(
                f"feature {self.name!r} cannot be both sensitive and public"
            )

    @property
    def bit_length(self) -> int:
        """Bits needed to represent a code of this feature."""
        return max(1, (self.domain_size - 1).bit_length())


@dataclass
class Dataset:
    """A fully categorical dataset with schema metadata.

    Attributes
    ----------
    name:
        Dataset identifier used in reports.
    features:
        Column metadata, in column order.
    X:
        ``(n_samples, n_features)`` integer code matrix.
    y:
        ``(n_samples,)`` integer class labels.
    label_name:
        Name of the prediction target.
    """

    name: str
    features: List[FeatureSpec]
    X: np.ndarray
    y: np.ndarray
    label_name: str = "label"

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X)
        self.y = np.asarray(self.y)
        if self.X.ndim != 2:
            raise SchemaError(f"X must be 2-d, got shape {self.X.shape}")
        if self.X.shape[1] != len(self.features):
            raise SchemaError(
                f"{self.X.shape[1]} columns vs {len(self.features)} feature specs"
            )
        if len(self.X) != len(self.y):
            raise SchemaError(f"{len(self.X)} rows vs {len(self.y)} labels")
        if not np.issubdtype(self.X.dtype, np.integer):
            raise SchemaError(f"X must be integer-coded, got dtype {self.X.dtype}")
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise SchemaError("feature names must be unique")
        for index, spec in enumerate(self.features):
            column = self.X[:, index]
            if len(column) and (column.min() < 0 or column.max() >= spec.domain_size):
                raise SchemaError(
                    f"feature {spec.name!r} has codes outside "
                    f"[0, {spec.domain_size})"
                )

    # -- basic views ----------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return len(self.X)

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return len(self.features)

    @property
    def n_classes(self) -> int:
        """Number of distinct labels."""
        return len(np.unique(self.y))

    @property
    def feature_names(self) -> List[str]:
        """Column names in order."""
        return [f.name for f in self.features]

    @property
    def domain_sizes(self) -> List[int]:
        """Per-column category counts."""
        return [f.domain_size for f in self.features]

    def feature_index(self, name: str) -> int:
        """Column index of a feature by name."""
        for index, spec in enumerate(self.features):
            if spec.name == name:
                return index
        raise SchemaError(f"no feature named {name!r} in dataset {self.name!r}")

    # -- privacy-relevant partitions --------------------------------------

    @property
    def sensitive_indices(self) -> List[int]:
        """Columns the adversary tries to infer; never disclosable."""
        return [i for i, f in enumerate(self.features) if f.sensitive]

    @property
    def public_indices(self) -> List[int]:
        """Columns that are already public knowledge."""
        return [i for i, f in enumerate(self.features) if f.public]

    @property
    def disclosable_indices(self) -> List[int]:
        """Columns disclosable without *total* loss on a sensitive
        attribute (i.e. the non-sensitive columns). The optimizer may
        still consider sensitive columns -- at maximal risk -- when the
        caller passes them explicitly."""
        return [i for i, f in enumerate(self.features) if not f.sensitive]

    def subset(self, row_indices: Sequence[int], name_suffix: str = "") -> "Dataset":
        """Row-subset view (copies data) preserving the schema."""
        row_indices = np.asarray(row_indices)
        return Dataset(
            name=self.name + name_suffix,
            features=list(self.features),
            X=self.X[row_indices].copy(),
            y=self.y[row_indices].copy(),
            label_name=self.label_name,
        )

    def summary_rows(self) -> List[Tuple[str, int, str]]:
        """Per-feature ``(name, domain, flags)`` rows for reports."""
        rows = []
        for spec in self.features:
            flags = []
            if spec.sensitive:
                flags.append("sensitive")
            if spec.public:
                flags.append("public")
            rows.append((spec.name, spec.domain_size, ",".join(flags) or "-"))
        return rows

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Dataset {self.name!r}: {self.n_samples} samples, "
            f"{self.n_features} features, {self.n_classes} classes "
            f"(label={self.label_name!r})",
        ]
        for name, domain, flags in self.summary_rows():
            lines.append(f"  {name:<22} domain={domain:<3} {flags}")
        return "\n".join(lines)
