"""Random Bayesian-network datasets of arbitrary dimension.

The optimizer-scalability experiments (E6, E8) need datasets with tens
of features and controllable correlation structure. This generator
samples a random DAG (bounded in-degree), random conditional
probability tables, then draws a cohort by ancestral sampling. The
label is a noisy threshold over a random subset of features; a chosen
fraction of features is marked sensitive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.data.schema import Dataset, FeatureSpec


def random_dag(
    n_nodes: int, max_parents: int, rng: np.random.Generator
) -> nx.DiGraph:
    """Random DAG over ``0..n_nodes-1`` with bounded in-degree.

    Edges always point from lower to higher node index, which both
    guarantees acyclicity and gives a topological order for free.
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if max_parents < 0:
        raise ValueError(f"max_parents must be non-negative, got {max_parents}")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_nodes))
    for node in range(1, n_nodes):
        available = min(node, max_parents)
        if available == 0:
            continue
        n_parents = int(rng.integers(0, available + 1))
        parents = rng.choice(node, size=n_parents, replace=False)
        for parent in parents:
            graph.add_edge(int(parent), node)
    return graph


def generate_bayesnet_dataset(
    n_samples: int = 2000,
    n_features: int = 16,
    domain_size: int = 3,
    max_parents: int = 2,
    n_sensitive: int = 2,
    seed: int = 0,
    concentration: float = 0.6,
) -> Dataset:
    """Sample a dataset from a random Bayesian network.

    Parameters
    ----------
    n_samples, n_features, domain_size:
        Shape of the generated cohort (all features share one domain
        size for simplicity).
    max_parents:
        In-degree bound of the random DAG; higher values give stronger
        multivariate correlation.
    n_sensitive:
        How many features (the last ones in index order, which tend to
        have parents and thus be predictable) are marked sensitive.
    seed:
        Determines the DAG, the CPTs and the samples.
    concentration:
        Dirichlet concentration of the random CPT rows; small values
        give sharp (informative) conditionals.
    """
    if n_sensitive >= n_features:
        raise ValueError(
            f"n_sensitive={n_sensitive} must be below n_features={n_features}"
        )
    rng = np.random.default_rng(seed)
    dag = random_dag(n_features, max_parents, rng)

    # Random CPTs: for each node, one Dirichlet row per parent config.
    tables: List[np.ndarray] = []
    parent_lists: List[List[int]] = []
    for node in range(n_features):
        parents = sorted(dag.predecessors(node))
        parent_lists.append(parents)
        n_configs = domain_size ** len(parents)
        tables.append(
            rng.dirichlet(np.full(domain_size, concentration), size=n_configs)
        )

    # Ancestral sampling (node order is already topological).
    samples = np.zeros((n_samples, n_features), dtype=np.int64)
    for node in range(n_features):
        parents = parent_lists[node]
        if parents:
            config = np.zeros(n_samples, dtype=np.int64)
            for parent in parents:
                config = config * domain_size + samples[:, parent]
        else:
            config = np.zeros(n_samples, dtype=np.int64)
        uniform = rng.random(n_samples)
        cumulative = tables[node].cumsum(axis=1)
        samples[:, node] = (uniform[:, None] > cumulative[config]).sum(axis=1)

    # Label: noisy threshold over a random feature subset.
    weight_count = max(2, n_features // 3)
    chosen = rng.choice(n_features, size=weight_count, replace=False)
    weights = rng.normal(0, 1, weight_count)
    score = samples[:, chosen] @ weights + rng.normal(0, 0.5, n_samples)
    label = (score > np.median(score)).astype(np.int64)

    sensitive_set = set(range(n_features - n_sensitive, n_features))
    features = [
        FeatureSpec(
            name=f"f{index}",
            domain_size=domain_size,
            sensitive=index in sensitive_set,
            description=f"synthetic BN node {index} "
            f"(parents={parent_lists[index] or 'none'})",
        )
        for index in range(n_features)
    ]
    return Dataset(
        name=f"bayesnet-d{n_features}",
        features=features,
        X=samples,
        y=label,
        label_name="threshold_class",
    )
