"""Deterministic train/test and cross-validation splits."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.data.schema import Dataset


class SplitError(Exception):
    """Raised on invalid split parameters."""


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.25, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Shuffle rows deterministically and split into train/test views."""
    if not 0.0 < test_fraction < 1.0:
        raise SplitError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n_samples)
    n_test = max(1, int(round(dataset.n_samples * test_fraction)))
    if n_test >= dataset.n_samples:
        raise SplitError("test fraction leaves no training data")
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return dataset.subset(train_idx, "/train"), dataset.subset(test_idx, "/test")


def k_fold_indices(
    n_samples: int, n_folds: int = 5, seed: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indices, test_indices)`` per fold."""
    if n_folds < 2:
        raise SplitError(f"need at least 2 folds, got {n_folds}")
    if n_folds > n_samples:
        raise SplitError(f"{n_folds} folds for only {n_samples} samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    folds: List[np.ndarray] = np.array_split(order, n_folds)
    for i in range(n_folds):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train, test
