"""Data substrate: schemas, generators and splits.

The paper evaluates on a pharmacogenomic cohort (the IWPC warfarin
dataset targeted by the Fredrikson et al. model-inversion attack) plus
standard benchmark datasets. None of those are redistributable, so this
package provides *structure-preserving synthetic generators*:

* :func:`repro.data.warfarin.generate_warfarin` -- demographics, two
  pharmacogenes (``VKORC1``, ``CYP2C9``) with race-dependent published
  allele frequencies, and a dose label produced by the published IWPC
  linear dosing equation plus noise. This reproduces the attack surface
  (demographics correlate with genotype; the label is a function of
  both) that the paper's privacy risk model is about.
* :func:`repro.data.uci_like.generate_adult_like` and
  :func:`repro.data.uci_like.generate_cancer_like` -- census-income and
  cytology-style datasets with realistic correlation structure.
* :func:`repro.data.synthetic.generate_bayesnet_dataset` -- arbitrary-
  dimension datasets sampled from random Bayesian networks, used by the
  optimizer scalability benchmarks.

All generators emit :class:`repro.data.schema.Dataset` objects with
integer-coded categorical features and per-feature
:class:`repro.data.schema.FeatureSpec` metadata (domain size, whether
the attribute is *sensitive* -- an inference target -- or already
*public*).
"""

from repro.data.loaders import load_dataset_csv, save_dataset_csv
from repro.data.schema import Dataset, FeatureSpec
from repro.data.splits import k_fold_indices, train_test_split
from repro.data.synthetic import generate_bayesnet_dataset
from repro.data.uci_like import generate_adult_like, generate_cancer_like
from repro.data.warfarin import generate_warfarin, generate_warfarin_with_dose

__all__ = [
    "Dataset",
    "FeatureSpec",
    "generate_adult_like",
    "generate_bayesnet_dataset",
    "generate_cancer_like",
    "generate_warfarin",
    "generate_warfarin_with_dose",
    "k_fold_indices",
    "load_dataset_csv",
    "save_dataset_csv",
    "train_test_split",
]
