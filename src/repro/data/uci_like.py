"""UCI-style synthetic datasets (census income, cytology).

Structure-preserving stand-ins for the Adult and Wisconsin Breast
Cancer datasets commonly used in secure-classification evaluations.
Each generator builds a correlated categorical joint and a label that
depends on several features, so classifiers reach realistic accuracy
and the privacy model has real correlations to exploit.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Dataset, FeatureSpec

ADULT_FEATURES = (
    FeatureSpec("age_bracket", 5, public=True,
                description="age bracket (<25/25-34/35-44/45-54/55+)"),
    FeatureSpec("education", 5, public=True,
                description="education level (dropout..advanced degree)"),
    FeatureSpec("workclass", 4,
                description="employment sector"),
    FeatureSpec("occupation_tier", 4,
                description="occupation skill tier"),
    FeatureSpec("hours_bracket", 4,
                description="weekly hours bracket"),
    FeatureSpec("capital_gain", 3,
                description="capital gains (none/some/large)"),
    FeatureSpec("sex", 2, public=True,
                description="administrative sex"),
    FeatureSpec("race_group", 3, public=True,
                description="race group"),
    FeatureSpec("marital_status", 3, sensitive=True,
                description="marital status (inference target)"),
    FeatureSpec("union_member", 2,
                description="union membership"),
    FeatureSpec("health_coverage", 3, sensitive=True,
                description="health-coverage tier (inference target)"),
)


def generate_adult_like(n_samples: int = 8000, seed: int = 1) -> Dataset:
    """Census-income-style dataset; label = high earner (binary)."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = np.random.default_rng(seed)

    age = rng.choice(5, n_samples, p=(0.18, 0.26, 0.24, 0.18, 0.14))
    sex = rng.integers(0, 2, n_samples)
    race = rng.choice(3, n_samples, p=(0.72, 0.14, 0.14))

    # Education correlates with age bracket mildly and drives occupation.
    education = np.clip(
        rng.choice(5, n_samples, p=(0.12, 0.3, 0.3, 0.18, 0.1))
        + (age >= 1).astype(int) - (age == 0).astype(int),
        0, 4,
    )
    occupation = np.clip(
        education - rng.choice(2, n_samples, p=(0.6, 0.4)), 0, 3
    )
    workclass = rng.choice(4, n_samples, p=(0.65, 0.2, 0.1, 0.05))
    hours = np.clip(
        rng.choice(4, n_samples, p=(0.15, 0.5, 0.25, 0.1))
        + (occupation >= 2).astype(int) - 1 + rng.integers(0, 2, n_samples),
        0, 3,
    )
    capital = rng.choice(3, n_samples, p=(0.82, 0.13, 0.05))
    capital = np.clip(capital + (occupation == 3).astype(int)
                      * rng.integers(0, 2, n_samples), 0, 2)

    # Marital status correlates with age; health coverage with occupation.
    marital_probs = np.array([
        (0.75, 0.2, 0.05),
        (0.4, 0.5, 0.1),
        (0.22, 0.62, 0.16),
        (0.15, 0.62, 0.23),
        (0.1, 0.55, 0.35),
    ])
    marital = np.array(
        [rng.choice(3, p=marital_probs[a]) for a in age], dtype=np.int64
    )
    coverage = np.clip(
        occupation - rng.choice(2, n_samples, p=(0.5, 0.5)) + 1, 0, 2
    )
    union = (rng.random(n_samples) < np.where(workclass == 1, 0.35, 0.08)).astype(
        np.int64
    )

    score = (
        0.9 * occupation
        + 0.7 * education
        + 0.5 * hours
        + 1.4 * capital
        + 0.4 * (marital == 1)
        + 0.3 * age
        + rng.normal(0, 1.0, n_samples)
    )
    label = (score > np.percentile(score, 75)).astype(np.int64)

    matrix = np.column_stack([
        age, education, workclass, occupation, hours, capital,
        sex, race, marital, union, coverage,
    ]).astype(np.int64)
    return Dataset(
        name="adult-like",
        features=list(ADULT_FEATURES),
        X=matrix,
        y=label,
        label_name="high_income",
    )


CANCER_FEATURES = (
    FeatureSpec("clump_thickness", 4,
                description="clump thickness (binned 1-10 scale)"),
    FeatureSpec("cell_size_uniformity", 4,
                description="uniformity of cell size"),
    FeatureSpec("cell_shape_uniformity", 4,
                description="uniformity of cell shape"),
    FeatureSpec("marginal_adhesion", 4,
                description="marginal adhesion"),
    FeatureSpec("epithelial_size", 4,
                description="single epithelial cell size"),
    FeatureSpec("bare_nuclei", 4, sensitive=True,
                description="bare nuclei (genomic proxy; inference target)"),
    FeatureSpec("bland_chromatin", 4,
                description="bland chromatin"),
    FeatureSpec("normal_nucleoli", 4, sensitive=True,
                description="normal nucleoli (genomic proxy; inference target)"),
    FeatureSpec("mitoses", 3,
                description="mitoses count bracket"),
)


def generate_cancer_like(n_samples: int = 600, seed: int = 2) -> Dataset:
    """Cytology-style dataset; label = malignant (binary).

    A latent severity variable drives all nine cytological measurements,
    reproducing the strong inter-feature correlation of the Wisconsin
    data (which is what makes a handful of features nearly sufficient
    for classification -- and what makes disclosure risky).
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = np.random.default_rng(seed)

    severity = rng.beta(0.7, 1.3, n_samples)  # skewed toward benign

    def measurement(bins: int, weight: float) -> np.ndarray:
        noisy = np.clip(weight * severity + rng.normal(0, 0.16, n_samples), 0, 0.999)
        return (noisy * bins).astype(np.int64)

    columns = [
        measurement(4, 1.0),   # clump_thickness
        measurement(4, 1.1),   # cell_size_uniformity
        measurement(4, 1.1),   # cell_shape_uniformity
        measurement(4, 0.9),   # marginal_adhesion
        measurement(4, 0.8),   # epithelial_size
        measurement(4, 1.2),   # bare_nuclei
        measurement(4, 0.9),   # bland_chromatin
        measurement(4, 1.0),   # normal_nucleoli
        measurement(3, 0.7),   # mitoses
    ]
    label = (severity + rng.normal(0, 0.08, n_samples) > 0.55).astype(np.int64)
    return Dataset(
        name="cancer-like",
        features=list(CANCER_FEATURES),
        X=np.column_stack(columns),
        y=label,
        label_name="malignant",
    )
