"""repro.telemetry -- spans, counters and per-request metrics.

The observability backbone of the reproduction: hierarchical spans with
monotonic timings over every protocol entry point, typed counters,
gauges and histograms for the crypto hot paths and the serving runtime
(Paillier ops, DGK comparisons, precompute pool hits/misses, wire bytes
by codec tag, transport retries, serve queue depth/wait),
a thread/process-safe registry with snapshot/merge so the
process-pool engine's workers and served requests report back, and
JSON/text exporters behind ``--metrics`` and ``python -m repro
metrics``.

Disabled by default and built to stay off the hot path: recording
helpers check one module flag and return, and :func:`span` hands out a
shared no-op context manager. Enable with
``telemetry.configure(True)`` (the CLI does this for ``--metrics``).

Usage::

    import repro.telemetry as telemetry

    telemetry.configure(True, reset=True)
    with telemetry.span("pipeline.classify", row=3):
        label = pipeline.classify(row, ctx=ctx)
    telemetry.write_metrics("metrics.json", telemetry.snapshot())

See ``docs/OBSERVABILITY.md`` for the span taxonomy and the counter
catalogue.
"""

from repro.telemetry.export import (
    histogram_quantiles,
    load_metrics,
    render_text,
    span_wire_bytes,
    to_json,
    validate_metrics,
    wire_bytes_total,
    write_metrics,
)
from repro.telemetry.registry import (
    SCHEMA,
    MetricsRegistry,
    SpanRecord,
    configure,
    count,
    current_span,
    enabled,
    gauge,
    get_registry,
    merge_snapshot,
    observe,
    record_wire,
    reset,
    snapshot,
    span,
)

__all__ = [
    "SCHEMA",
    "MetricsRegistry",
    "SpanRecord",
    "configure",
    "count",
    "current_span",
    "enabled",
    "gauge",
    "get_registry",
    "histogram_quantiles",
    "load_metrics",
    "merge_snapshot",
    "observe",
    "record_wire",
    "render_text",
    "reset",
    "snapshot",
    "span",
    "span_wire_bytes",
    "to_json",
    "validate_metrics",
    "wire_bytes_total",
    "write_metrics",
]
