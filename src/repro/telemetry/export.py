"""Exporters and schema validation for telemetry snapshots.

A snapshot (:meth:`repro.telemetry.registry.MetricsRegistry.snapshot`)
is a plain dict; this module renders it as an indented span-tree text
report or as JSON, validates documents read back from disk (the CI
metrics smoke job gates on :func:`validate_metrics`), and computes the
reconciliation totals that must match the protocol's
:class:`~repro.smc.protocol.ExecutionTrace` byte accounting.
"""

from __future__ import annotations

import json
import math
import sys
from typing import Any, Dict, List

from repro.telemetry.registry import SCHEMA


def wire_bytes_total(snapshot: Dict[str, Any]) -> int:
    """Total wire bytes attributed to spans plus the unattributed rest.

    The span-tree sum (each span's own ``wire_bytes`` attribute,
    children included) plus the ``wire.unattributed_bytes`` counter
    must equal the execution trace's ``total_bytes`` for the same
    session -- both sides are charged from the same size computation in
    :meth:`repro.smc.network.Channel.send`.
    """
    return span_wire_bytes(snapshot) + int(
        snapshot.get("counters", {}).get("wire.unattributed_bytes", 0)
    )


def span_wire_bytes(snapshot: Dict[str, Any]) -> int:
    """Sum of ``wire_bytes`` attributes over the whole span forest."""

    def walk(span: Dict[str, Any]) -> int:
        own = int(span.get("attributes", {}).get("wire_bytes", 0))
        return own + sum(walk(child) for child in span.get("children", []))

    return sum(walk(span) for span in snapshot.get("spans", []))


def histogram_quantiles(
    snapshot: Dict[str, Any], name: str, qs: List[float]
) -> Dict[float, float]:
    """Quantiles of the histogram ``name`` from its retained samples.

    ``qs`` are fractions in ``[0, 1]`` (``0.5`` = median, ``0.99`` =
    p99), computed by the nearest-rank method over the histogram's
    ``samples`` list -- exact while the observation count stays under
    :data:`~repro.telemetry.registry.HISTOGRAM_SAMPLE_CAP`, a
    first-N approximation beyond it. Returns an empty dict when the
    histogram is missing or carries no samples (e.g. a pre-samples
    document), so callers can fall back to min/max.

    Example::

        waits = histogram_quantiles(snap, "serve.queue_wait", [0.5, 0.99])
        print(f"p50={waits[0.5]:.3f}s p99={waits[0.99]:.3f}s")
    """
    hist = snapshot.get("histograms", {}).get(name, {})
    samples = sorted(hist.get("samples", []))
    if not samples:
        return {}
    result: Dict[float, float] = {}
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = max(0, math.ceil(q * len(samples)) - 1)
        result[q] = samples[rank]
    return result


def render_text(snapshot: Dict[str, Any]) -> str:
    """Human-readable report: span tree, then counters, then histograms."""
    lines: List[str] = []
    spans = snapshot.get("spans", [])
    if spans:
        lines.append("spans:")
        for span in spans:
            _render_span(span, lines, depth=1)
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{width}}  {rendered}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            value = gauges[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{width}}  {rendered}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            line = (
                f"  {name}  count={hist['count']:g} mean={mean:.6g} "
                f"min={hist['min']:.6g} max={hist['max']:.6g}"
            )
            quantiles = histogram_quantiles(snapshot, name, [0.5, 0.99])
            if quantiles:
                line += (
                    f" p50={quantiles[0.5]:.6g} p99={quantiles[0.99]:.6g}"
                )
            lines.append(line)
    if not lines:
        lines.append("(empty telemetry snapshot)")
    return "\n".join(lines)


def _render_span(span: Dict[str, Any], lines: List[str], depth: int) -> None:
    indent = "  " * depth
    attrs = span.get("attributes", {})
    parts = [f"{indent}{span.get('name', '?')}"]
    parts.append(f"{span.get('elapsed_seconds', 0.0) * 1e3:.3f}ms")
    for key in sorted(attrs):
        parts.append(f"{key}={attrs[key]}")
    lines.append(" ".join(parts))
    for child in span.get("children", []):
        _render_span(child, lines, depth + 1)


def to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """The snapshot as a JSON document (stable key order)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def write_metrics(path: str, snapshot: Dict[str, Any]) -> None:
    """Write a snapshot as JSON to ``path`` (``-`` means stdout)."""
    text = to_json(snapshot)
    if path == "-":
        sys.stdout.write(text + "\n")
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def load_metrics(path: str) -> Dict[str, Any]:
    """Read a metrics JSON document from ``path`` (``-`` means stdin)."""
    if path == "-":
        return json.load(sys.stdin)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_metrics(document: Any) -> List[str]:
    """Structural schema check; returns a list of problems (empty = ok).

    Not a JSON-Schema engine -- a hand-rolled structural validator over
    the ``repro.telemetry/v1`` shape, strict enough for the CI smoke
    job to catch truncated or hand-mangled exports.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be an object, got {type(document).__name__}"]
    schema = document.get("schema")
    if schema != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {schema!r}")
    counters = document.get("counters")
    if not isinstance(counters, dict):
        errors.append("counters must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"counter {name!r} must be a number")
    histograms = document.get("histograms")
    if not isinstance(histograms, dict):
        errors.append("histograms must be an object")
    else:
        for name, hist in histograms.items():
            if not isinstance(hist, dict):
                errors.append(f"histogram {name!r} must be an object")
                continue
            for key in ("count", "sum", "min", "max"):
                if not isinstance(hist.get(key), (int, float)) or \
                        isinstance(hist.get(key), bool):
                    errors.append(f"histogram {name!r} missing numeric {key!r}")
            samples = hist.get("samples")
            if samples is not None:  # optional: pre-samples documents stay ok
                if not isinstance(samples, list) or any(
                    not isinstance(v, (int, float)) or isinstance(v, bool)
                    for v in samples
                ):
                    errors.append(
                        f"histogram {name!r} samples must be an array of "
                        f"numbers"
                    )
    gauges = document.get("gauges")
    if gauges is not None:  # optional: pre-gauge documents stay valid
        if not isinstance(gauges, dict):
            errors.append("gauges must be an object")
        else:
            for name, value in gauges.items():
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    errors.append(f"gauge {name!r} must be a number")
    spans = document.get("spans")
    if not isinstance(spans, list):
        errors.append("spans must be an array")
    else:
        for index, span in enumerate(spans):
            errors.extend(_validate_span(span, f"spans[{index}]"))
    return errors


def _validate_span(span: Any, where: str) -> List[str]:
    errors: List[str] = []
    if not isinstance(span, dict):
        return [f"{where} must be an object"]
    if not isinstance(span.get("name"), str) or not span.get("name"):
        errors.append(f"{where}.name must be a non-empty string")
    elapsed = span.get("elapsed_seconds")
    if not isinstance(elapsed, (int, float)) or isinstance(elapsed, bool) \
            or elapsed < 0:
        errors.append(f"{where}.elapsed_seconds must be a non-negative number")
    if not isinstance(span.get("attributes"), dict):
        errors.append(f"{where}.attributes must be an object")
    children = span.get("children")
    if not isinstance(children, list):
        errors.append(f"{where}.children must be an array")
    else:
        for index, child in enumerate(children):
            errors.extend(_validate_span(child, f"{where}.children[{index}]"))
    return errors
