"""The telemetry core: spans, counters, histograms, and the registry.

Zero-dependency (stdlib only) tracing and metrics for the secure
classification runtime. The design goals, in order:

1. **Near-no-op when disabled.** Every recording entry point starts
   with a single module-flag check; :func:`span` returns one shared
   no-op context manager without allocating. The ``bench_e22``
   benchmark pins the disabled overhead on the crypto hot paths.
2. **Thread- and process-safe.** The registry serialises mutation
   behind one lock; the active-span stack lives in a
   :class:`contextvars.ContextVar`, so concurrent serving threads each
   get their own span tree while sharing the counters. Worker processes
   never share the registry -- they build plain-dict snapshots
   (:meth:`MetricsRegistry.snapshot`) and the parent folds them in with
   :meth:`MetricsRegistry.merge`.
3. **Reconcilable with the protocol accounting.** Wire traffic is
   recorded through :func:`record_wire`, which attributes every frame's
   bytes both to the innermost open span and to the global counters
   from the *same* size value the :class:`~repro.smc.protocol
   .ExecutionTrace` is charged with -- the two views cannot drift
   (``tests/telemetry/test_reconcile.py`` holds the line).

Span taxonomy and the counter catalogue are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import contextvars
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

SCHEMA = "repro.telemetry/v1"

#: Per-histogram cap on retained raw observations. Histograms keep the
#: first this-many values alongside count/sum/min/max so quantiles
#: (p50/p99 of ``serve.queue_wait``) can be computed from a snapshot;
#: beyond the cap only the aggregate moments keep updating. Bounded so
#: a long-running server cannot grow a snapshot without limit.
HISTOGRAM_SAMPLE_CAP = 4096

#: Module-level fast path: all recording helpers bail on this flag
#: before doing any work. Mutated only via :func:`configure`.
_enabled = False

#: The innermost open span of the current thread/task (or ``None``).
_active_span: contextvars.ContextVar[Optional["SpanRecord"]] = (
    contextvars.ContextVar("repro_telemetry_active_span", default=None)
)


@dataclass
class SpanRecord:
    """One finished (or in-flight) span: a named, timed tree node.

    Attributes hold structured facts about the work done *directly*
    inside this span (not its children): accumulated ``wire_bytes``,
    ``wire_frames``, protocol parameters, request ids. Children are the
    sub-spans opened while this span was innermost.
    """

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def set(self, key: str, value: Any) -> None:
        """Set one structured attribute."""
        self.attributes[key] = value

    def add(self, key: str, delta: float) -> None:
        """Accumulate a numeric attribute (missing counts as zero)."""
        self.attributes[key] = self.attributes.get(key, 0) + delta

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by snapshots and the JSON exporter."""
        return {
            "name": self.name,
            "elapsed_seconds": self.elapsed_seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            name=str(data.get("name", "")),
            attributes=dict(data.get("attributes", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )


class MetricsRegistry:
    """Thread-safe in-memory store of counters, histograms and spans.

    One process-global instance (:func:`get_registry`) backs the module
    helpers; independent instances can be created for tests or for
    worker-side accumulation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}
        self._gauges: Dict[str, float] = {}
        self._roots: List[SpanRecord] = []

    # -- recording ------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its current ``value``.

        Gauges are *set*, not accumulated -- they report an
        instantaneous level (e.g. ``serve.queue_depth``). Merging folds
        by maximum, so a merged document reads as the high-water mark.
        """
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``.

        Alongside the running count/sum/min/max, the first
        :data:`HISTOGRAM_SAMPLE_CAP` raw values are retained in
        ``samples`` so snapshot consumers can compute quantiles
        (:func:`repro.telemetry.histogram_quantiles`).
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = {
                    "count": 1, "sum": value, "min": value, "max": value,
                    "samples": [value],
                }
            else:
                hist["count"] += 1
                hist["sum"] += value
                hist["min"] = min(hist["min"], value)
                hist["max"] = max(hist["max"], value)
                if len(hist["samples"]) < HISTOGRAM_SAMPLE_CAP:
                    hist["samples"].append(value)

    def add_root(self, span: SpanRecord) -> None:
        """Attach a finished top-level span to the registry."""
        with self._lock:
            self._roots.append(span)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A deep plain-dict copy, safe to pickle across processes."""
        with self._lock:
            return {
                "schema": SCHEMA,
                "counters": dict(self._counters),
                "histograms": {
                    name: {**hist, "samples": list(hist.get("samples", []))}
                    for name, hist in self._histograms.items()
                },
                "gauges": dict(self._gauges),
                "spans": [root.to_dict() for root in self._roots],
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, histograms combine (count/sum add, min/max fold),
        spans append as additional roots. This is how process-pool
        workers report back and how a served request's registry folds
        into the server's session registry.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, hist in snapshot.get("histograms", {}).items():
            theirs = list(hist.get("samples", []))
            with self._lock:
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = {
                        **hist, "samples": theirs[:HISTOGRAM_SAMPLE_CAP],
                    }
                else:
                    mine["count"] += hist["count"]
                    mine["sum"] += hist["sum"]
                    mine["min"] = min(mine["min"], hist["min"])
                    mine["max"] = max(mine["max"], hist["max"])
                    room = HISTOGRAM_SAMPLE_CAP - len(mine["samples"])
                    if room > 0:
                        mine["samples"].extend(theirs[:room])
        for name, value in snapshot.get("gauges", {}).items():
            with self._lock:
                mine = self._gauges.get(name)
                self._gauges[name] = (
                    value if mine is None else max(mine, value)
                )
        for span in snapshot.get("spans", []):
            self.add_root(SpanRecord.from_dict(span))

    def reset(self) -> None:
        """Drop every recorded value (used between sessions/tests)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()
            self._roots.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry behind the module helpers."""
    return _registry


# -- module-level recording helpers (all guarded by the enabled flag) --------


def enabled() -> bool:
    """Is telemetry recording currently on?"""
    return _enabled


def configure(on: bool = True, reset: bool = False) -> None:
    """Turn telemetry on or off; optionally clear the registry."""
    global _enabled
    _enabled = bool(on)
    if reset:
        _registry.reset()
        _active_span.set(None)


def reset() -> None:
    """Clear the registry without changing the enabled flag."""
    _registry.reset()


def count(name: str, value: float = 1) -> None:
    """Global counter increment; no-op while disabled."""
    if not _enabled:
        return
    _registry.count(name, value)


def observe(name: str, value: float) -> None:
    """Global histogram observation; no-op while disabled."""
    if not _enabled:
        return
    _registry.observe(name, value)


def gauge(name: str, value: float) -> None:
    """Global gauge set; no-op while disabled."""
    if not _enabled:
        return
    _registry.gauge(name, value)


def snapshot() -> Dict[str, Any]:
    """Snapshot of the global registry (works even while disabled)."""
    return _registry.snapshot()


def merge_snapshot(data: Dict[str, Any]) -> None:
    """Fold a worker/peer snapshot into the global registry."""
    _registry.merge(data)


def current_span() -> Optional[SpanRecord]:
    """The innermost open span of this thread/task, if any."""
    return _active_span.get()


def record_wire(direction: str, size: int, tag: Optional[str] = None) -> None:
    """Attribute one wire frame of ``size`` bytes to the telemetry.

    Called by :class:`repro.smc.network.Channel` at every logical wire
    crossing with the *same* byte count the execution trace is charged,
    which is what keeps the span view and the trace view reconciled.
    ``direction`` is ``"client_to_server"`` or ``"server_to_client"``;
    ``tag`` is the payload's top-level wire-codec tag name.
    """
    if not _enabled:
        return
    _registry.count("wire.frames")
    _registry.count(f"wire.bytes.{direction}", size)
    if tag is not None:
        _registry.count(f"wire.bytes.tag.{tag}", size)
    active = _active_span.get()
    if active is not None:
        active.add("wire_bytes", size)
        active.add("wire_frames", 1)
    else:
        _registry.count("wire.unattributed_bytes", size)


class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, delta: float) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span into the registry."""

    __slots__ = ("_record", "_start", "_token")

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self._record = SpanRecord(name=name, attributes=attributes)
        self._start = 0.0
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> SpanRecord:
        self._start = time.perf_counter()
        self._token = _active_span.set(self._record)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        record.elapsed_seconds = time.perf_counter() - self._start
        if exc_type is not None:
            record.set("error", exc_type.__name__)
        if self._token is not None:
            parent = self._token.old_value
            if parent is contextvars.Token.MISSING:
                parent = None
            _active_span.reset(self._token)
        else:  # pragma: no cover - __enter__ always sets the token
            parent = None
        if parent is not None:
            parent.children.append(record)
        else:
            _registry.add_root(record)
        return False


def span(name: str, **attributes: Any):
    """Open a telemetry span timing one named unit of work.

    While telemetry is disabled this returns a shared no-op context
    manager -- no allocation, no clock reads, no registry traffic.
    While enabled, the span times itself with the monotonic clock,
    nests under the innermost open span of the current thread/task, and
    lands in the registry when the outermost span closes. The yielded
    record takes structured attributes via ``set``/``add``; an
    exception escaping the block marks the span with an ``error``
    attribute before propagating.

    Example::

        telemetry.configure(True)
        with telemetry.span("pipeline.classify", row=3) as record:
            label = pipeline.classify(row, ctx=ctx)
            record.set("label", int(label))
    """
    if not _enabled:
        return _NOOP_SPAN
    return _LiveSpan(name, attributes)
